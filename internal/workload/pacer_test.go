package workload

import (
	"testing"
	"time"
)

func TestNewPacerValidation(t *testing.T) {
	if _, err := NewPacer(0); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := NewPacer(-5); err == nil {
		t.Error("negative rate accepted")
	}
}

// fakeClock drives a pacer deterministically.
type fakeClock struct {
	t      time.Time
	slept  time.Duration
	sleeps int
}

func (c *fakeClock) now() time.Time { return c.t }
func (c *fakeClock) sleep(d time.Duration) {
	c.slept += d
	c.sleeps++
	c.t = c.t.Add(d)
}

func TestPacerSchedule(t *testing.T) {
	p, err := NewPacer(1000) // 1 ms interval
	if err != nil {
		t.Fatal(err)
	}
	clk := &fakeClock{t: time.Unix(0, 0)}
	p.now = clk.now
	p.sleep = clk.sleep

	for i := 0; i < 10; i++ {
		p.Wait()
	}
	// First Wait is immediate; the next nine sleep 1 ms each.
	if clk.slept != 9*time.Millisecond {
		t.Errorf("total sleep = %v, want 9ms", clk.slept)
	}
}

func TestPacerAbsorbsSlowCaller(t *testing.T) {
	p, err := NewPacer(1000)
	if err != nil {
		t.Fatal(err)
	}
	clk := &fakeClock{t: time.Unix(0, 0)}
	p.now = clk.now
	p.sleep = clk.sleep

	p.Wait()
	// Caller dawdles 5 ms: the next five slots are already due, so Wait
	// must not sleep (absolute schedule, no drift accumulation).
	clk.t = clk.t.Add(5 * time.Millisecond)
	for i := 0; i < 5; i++ {
		p.Wait()
	}
	if clk.sleeps != 0 {
		t.Errorf("pacer slept %d times while behind schedule", clk.sleeps)
	}
	// Once caught up, pacing resumes.
	p.Wait()
	if clk.sleeps != 1 {
		t.Errorf("pacer did not resume sleeping after catching up (%d sleeps)", clk.sleeps)
	}
}

func TestPacerWaitBatch(t *testing.T) {
	p, err := NewPacer(1000)
	if err != nil {
		t.Fatal(err)
	}
	clk := &fakeClock{t: time.Unix(0, 0)}
	p.now = clk.now
	p.sleep = clk.sleep

	p.WaitBatch(0) // no-op
	p.WaitBatch(10)
	p.WaitBatch(10)
	// The second batch is due 10 ms after the first.
	if clk.slept != 10*time.Millisecond {
		t.Errorf("total sleep = %v, want 10ms", clk.slept)
	}
}

func TestPacerRealTimeSmoke(t *testing.T) {
	p, err := NewPacer(10000)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	for i := 0; i < 50; i++ {
		p.Wait()
	}
	elapsed := time.Since(start)
	if elapsed < 4*time.Millisecond {
		t.Errorf("50 waits at 10 kHz took %v, want ≥ ~4.9ms", elapsed)
	}
	if elapsed > 500*time.Millisecond {
		t.Errorf("50 waits at 10 kHz took %v; pacer stuck", elapsed)
	}
}
