package workload

import (
	"fmt"
	"time"
)

// Pacer shapes an input stream to a fixed offered load, for experiments
// that need latency at controlled utilization rather than at saturation
// (the hockey-stick curve of any queueing system). It uses absolute
// deadline scheduling so pacing error does not accumulate.
type Pacer struct {
	interval time.Duration
	next     time.Time
	now      func() time.Time
	sleep    func(time.Duration)
}

// NewPacer returns a pacer emitting at the given rate (tuples per second).
func NewPacer(tuplesPerSec float64) (*Pacer, error) {
	if tuplesPerSec <= 0 {
		return nil, fmt.Errorf("workload: pacer rate must be positive, got %f", tuplesPerSec)
	}
	return &Pacer{
		interval: time.Duration(float64(time.Second) / tuplesPerSec),
		now:      time.Now,
		sleep:    time.Sleep,
	}, nil
}

// Interval returns the pacing interval.
func (p *Pacer) Interval() time.Duration { return p.interval }

// Wait blocks until the next emission slot. The first call establishes the
// schedule origin.
func (p *Pacer) Wait() {
	now := p.now()
	if p.next.IsZero() {
		p.next = now
	}
	if d := p.next.Sub(now); d > 0 {
		p.sleep(d)
	}
	p.next = p.next.Add(p.interval)
}

// WaitBatch blocks until a batch of n emissions is due, amortizing timer
// overhead for high rates.
func (p *Pacer) WaitBatch(n int) {
	if n <= 0 {
		return
	}
	now := p.now()
	if p.next.IsZero() {
		p.next = now
	}
	if d := p.next.Sub(now); d > 0 {
		p.sleep(d)
	}
	p.next = p.next.Add(time.Duration(n) * p.interval)
}
