package workload

import (
	"math"
	"testing"

	"accelstream/internal/stream"
)

func TestSpecValidate(t *testing.T) {
	if err := (Spec{KeyDomain: -1}).Validate(); err == nil {
		t.Error("negative KeyDomain accepted")
	}
	if err := (Spec{RFraction: 1.5}).Validate(); err == nil {
		t.Error("RFraction > 1 accepted")
	}
	if _, err := NewGenerator(Spec{RFraction: -0.5}); err == nil {
		t.Error("NewGenerator accepted invalid spec")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	g1, err := NewGenerator(Spec{Seed: 99, Dist: Zipf, KeyDomain: 1024})
	if err != nil {
		t.Fatal(err)
	}
	g2, err := NewGenerator(Spec{Seed: 99, Dist: Zipf, KeyDomain: 1024})
	if err != nil {
		t.Fatal(err)
	}
	a := g1.Take(500)
	b := g2.Take(500)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("generators diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	if g1.Produced() != 500 {
		t.Errorf("Produced() = %d, want 500", g1.Produced())
	}
}

func TestGeneratorSequenceNumbersPerStream(t *testing.T) {
	g, err := NewGenerator(Spec{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var wantR, wantS uint64
	for _, in := range g.Take(1000) {
		if in.Side == stream.SideR {
			if in.Tuple.Seq != wantR {
				t.Fatalf("R seq = %d, want %d", in.Tuple.Seq, wantR)
			}
			wantR++
		} else {
			if in.Tuple.Seq != wantS {
				t.Fatalf("S seq = %d, want %d", in.Tuple.Seq, wantS)
			}
			wantS++
		}
	}
}

func TestDisjointNeverMatches(t *testing.T) {
	g, err := NewGenerator(Spec{Seed: 1, Dist: Disjoint, KeyDomain: 256})
	if err != nil {
		t.Fatal(err)
	}
	rKeys := map[uint32]bool{}
	sKeys := map[uint32]bool{}
	for _, in := range g.Take(2000) {
		if in.Side == stream.SideR {
			rKeys[in.Tuple.Key] = true
		} else {
			sKeys[in.Tuple.Key] = true
		}
	}
	for k := range rKeys {
		if sKeys[k] {
			t.Fatalf("key %d appears in both streams under Disjoint", k)
		}
	}
}

func TestRFractionRespected(t *testing.T) {
	g, err := NewGenerator(Spec{Seed: 3, RFraction: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	var r int
	const n = 20000
	for _, in := range g.Take(n) {
		if in.Side == stream.SideR {
			r++
		}
	}
	frac := float64(r) / n
	if math.Abs(frac-0.25) > 0.02 {
		t.Errorf("R fraction = %.3f, want ≈0.25", frac)
	}
}

func TestZipfSkew(t *testing.T) {
	g, err := NewGenerator(Spec{Seed: 7, Dist: Zipf, KeyDomain: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[uint32]int{}
	const n = 20000
	for _, in := range g.Take(n) {
		counts[in.Tuple.Key]++
	}
	// Under Zipf(1.2) the most frequent key dominates; under uniform over
	// 65536 keys any single key would appear ~0.3 times in expectation.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < n/20 {
		t.Errorf("max key frequency %d of %d; distribution does not look Zipf-skewed", max, n)
	}
}

func TestWindowFill(t *testing.T) {
	r, s, err := WindowFill(Spec{Seed: 11, Dist: Disjoint, KeyDomain: 512}, 128)
	if err != nil {
		t.Fatal(err)
	}
	if len(r) != 128 || len(s) != 128 {
		t.Fatalf("lengths %d/%d, want 128/128", len(r), len(s))
	}
	for i := range r {
		if r[i].Seq != uint64(i) || s[i].Seq != uint64(i) {
			t.Fatalf("sequence numbers not consecutive at %d", i)
		}
		if r[i].Key&0x80000000 == 0 {
			t.Fatalf("disjoint R key missing high bit: %#x", r[i].Key)
		}
		if s[i].Key&0x80000000 != 0 {
			t.Fatalf("disjoint S key has high bit: %#x", s[i].Key)
		}
	}
}

func TestAlternating(t *testing.T) {
	next, err := Alternating(Spec{Seed: 13, Dist: Disjoint, KeyDomain: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		in := next()
		wantSide := stream.SideR
		if i%2 == 1 {
			wantSide = stream.SideS
		}
		if in.Side != wantSide {
			t.Fatalf("arrival %d side = %v, want %v", i, in.Side, wantSide)
		}
	}
}
