// Package workload generates the synthetic input streams used by the tests,
// examples, and benchmark harness. The paper's evaluation drives both
// platforms with saturated streams of 64-bit tuples joined by an equi-join;
// this package reproduces that setup and adds controlled key distributions
// (uniform, Zipf, disjoint) so match selectivity can be dialed.
//
// All generators are deterministic given a seed, so experiment runs are
// reproducible.
package workload

import (
	"fmt"
	"math/rand"

	"accelstream/internal/core"
	"accelstream/internal/stream"
)

// KeyDist selects how join keys are drawn.
type KeyDist uint8

// Key distributions.
const (
	// Uniform draws keys uniformly from [0, KeyDomain).
	Uniform KeyDist = iota + 1
	// Zipf draws keys with a Zipf(1.2) skew over [0, KeyDomain).
	Zipf
	// Disjoint gives the R and S streams non-overlapping key ranges, so no
	// tuple ever matches — the zero-selectivity saturation workload used
	// for pure throughput measurement.
	Disjoint
)

// String implements fmt.Stringer.
func (d KeyDist) String() string {
	switch d {
	case Uniform:
		return "uniform"
	case Zipf:
		return "zipf"
	case Disjoint:
		return "disjoint"
	default:
		return fmt.Sprintf("dist(%d)", uint8(d))
	}
}

// Spec describes a workload.
type Spec struct {
	// Seed makes the workload reproducible.
	Seed int64
	// Dist is the key distribution. Defaults to Uniform.
	Dist KeyDist
	// KeyDomain is the number of distinct keys per stream. Defaults to
	// 1 << 20 (large domain: low selectivity).
	KeyDomain int
	// RFraction is the fraction of arrivals belonging to stream R.
	// Defaults to 0.5 (the balanced interleaving of the paper's setup).
	RFraction float64
}

func (s *Spec) applyDefaults() {
	if s.Dist == 0 {
		s.Dist = Uniform
	}
	if s.KeyDomain == 0 {
		s.KeyDomain = 1 << 20
	}
	if s.RFraction == 0 {
		s.RFraction = 0.5
	}
}

// Validate checks the spec.
func (s Spec) Validate() error {
	if s.KeyDomain < 0 {
		return fmt.Errorf("workload: KeyDomain must be non-negative, got %d", s.KeyDomain)
	}
	if s.RFraction < 0 || s.RFraction > 1 {
		return fmt.Errorf("workload: RFraction must be within [0,1], got %f", s.RFraction)
	}
	return nil
}

// Generator produces an endless stream of arrivals.
type Generator struct {
	spec Spec
	rng  *rand.Rand
	zipf *rand.Zipf

	seqR, seqS uint64
	produced   uint64
}

// NewGenerator builds a generator for the spec.
func NewGenerator(spec Spec) (*Generator, error) {
	spec.applyDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	g := &Generator{spec: spec, rng: rng}
	if spec.Dist == Zipf {
		g.zipf = rand.NewZipf(rng, 1.2, 1, uint64(spec.KeyDomain-1))
	}
	return g, nil
}

// Next produces the next arrival. Sequence numbers are assigned per stream.
func (g *Generator) Next() core.Input {
	side := stream.SideS
	if g.rng.Float64() < g.spec.RFraction {
		side = stream.SideR
	}
	var key uint32
	switch g.spec.Dist {
	case Zipf:
		key = uint32(g.zipf.Uint64())
	case Disjoint:
		if side == stream.SideR {
			key = 0x80000000 | uint32(g.rng.Intn(g.spec.KeyDomain))
		} else {
			key = uint32(g.rng.Intn(g.spec.KeyDomain)) &^ 0x80000000
		}
	default:
		key = uint32(g.rng.Intn(g.spec.KeyDomain))
	}
	in := core.Input{Side: side, Tuple: stream.Tuple{Key: key, Val: uint32(g.produced)}}
	if side == stream.SideR {
		in.Tuple.Seq = g.seqR
		g.seqR++
	} else {
		in.Tuple.Seq = g.seqS
		g.seqS++
	}
	g.produced++
	return in
}

// Take materializes the next n arrivals.
func (g *Generator) Take(n int) []core.Input {
	out := make([]core.Input, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// Produced returns how many arrivals have been generated.
func (g *Generator) Produced() uint64 { return g.produced }

// WindowFill produces two tuple slices (R and S) suitable for preloading a
// per-stream window of size w, drawn from the spec's distributions. The
// tuples carry per-stream sequence numbers 0..w-1.
func WindowFill(spec Spec, w int) (r, s []stream.Tuple, err error) {
	spec.applyDefaults()
	spec.RFraction = 0.5
	g, err := NewGenerator(spec)
	if err != nil {
		return nil, nil, err
	}
	r = make([]stream.Tuple, w)
	s = make([]stream.Tuple, w)
	for i := 0; i < w; i++ {
		in := g.Next()
		t := in.Tuple
		t.Seq = uint64(i)
		r[i] = t
		in = g.Next()
		t = in.Tuple
		t.Seq = uint64(i)
		s[i] = t
	}
	if spec.Dist == Disjoint {
		// Force disjointness regardless of which side the generator drew.
		for i := range r {
			r[i].Key |= 0x80000000
			s[i].Key &^= 0x80000000
		}
	}
	return r, s, nil
}

// Alternating returns a generator function producing a strict R/S/R/S
// interleaving with the spec's key distribution — the balanced saturation
// stream used for throughput runs.
func Alternating(spec Spec) (func() core.Input, error) {
	spec.applyDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	var zipf *rand.Zipf
	if spec.Dist == Zipf {
		zipf = rand.NewZipf(rng, 1.2, 1, uint64(spec.KeyDomain-1))
	}
	var n, seqR, seqS uint64
	return func() core.Input {
		side := stream.SideR
		if n%2 == 1 {
			side = stream.SideS
		}
		n++
		var key uint32
		switch spec.Dist {
		case Zipf:
			key = uint32(zipf.Uint64())
		case Disjoint:
			key = uint32(rng.Intn(spec.KeyDomain))
			if side == stream.SideR {
				key |= 0x80000000
			} else {
				key &^= 0x80000000
			}
		default:
			key = uint32(rng.Intn(spec.KeyDomain))
		}
		in := core.Input{Side: side, Tuple: stream.Tuple{Key: key}}
		if side == stream.SideR {
			in.Tuple.Seq = seqR
			seqR++
		} else {
			in.Tuple.Seq = seqS
			seqS++
		}
		return in
	}, nil
}
