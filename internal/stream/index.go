package stream

import "math/bits"

// KeyIndex is an incremental hash index over the Key field of a sliding
// window's resident tuples: key → ring slots, the structure a hash-probe
// kernel looks matches up in at O(matches) per probe instead of the
// scalar O(W) ring sweep. It is the software analogue of the hash tables
// GPU stream-join kernels build over their window partitions.
//
// Design: open addressing with linear probing over a power-of-two table
// of (key, insert number) entries. Expiry never touches the index — an
// entry is live iff its insert number still falls inside the window's
// resident generation range [Total-Len, Total), which makes the index
// tombstone-free: stale entries need no marker, they age out by the
// generation check alone. The ring-slot invariant (insert n occupies ring
// slot n mod Cap) turns a live entry back into its tuple with one array
// load. Inserts reclaim stale entries they cross (safe under open
// addressing: the slot stays occupied, so other chains keep their
// terminator-free prefix), and the table is rebuilt from the ring —
// amortized O(1) per insert, zero allocations — whenever the occupied
// fraction reaches half, so probe chains stay short forever.
//
// The index is single-writer, like the window it covers. After
// SlidingWindow.Reset (which restarts the generation counter) call
// Rebuild before the next lookup.
type KeyIndex struct {
	w     *SlidingWindow
	shift uint     // 64 - log2(table size): Fibonacci-hash bucket select
	mask  uint64   // table size - 1
	keys  []uint32 // entry keys
	ns    []uint64 // entry insert numbers; emptySlot marks unused slots
	used  int      // occupied (live or stale) slots
	limit int      // rebuild threshold on used
}

// emptySlot marks a table slot that has never held an entry since the
// last rebuild. Insert numbers are window generations and can never
// reach it.
const emptySlot = ^uint64(0)

// fibMul is 2^64 divided by the golden ratio: Fibonacci multiplicative
// hashing spreads the 32-bit keys over the table's high bits.
const fibMul = 0x9E3779B97F4A7C15

// NewKeyIndex builds an index over w and indexes any already-resident
// tuples. The table is sized to four slots per window slot (next power
// of two), so live entries alone never pass a quarter of it.
func NewKeyIndex(w *SlidingWindow) *KeyIndex {
	size := 8
	for size < 4*w.Cap() {
		size <<= 1
	}
	ix := &KeyIndex{
		w:     w,
		shift: uint(64 - bits.TrailingZeros(uint(size))),
		mask:  uint64(size - 1),
		keys:  make([]uint32, size),
		ns:    make([]uint64, size),
		limit: size / 2,
	}
	ix.Rebuild()
	return ix
}

// bucket returns the table slot key's probe chain starts at.
func (ix *KeyIndex) bucket(key uint32) uint64 {
	return (uint64(key) * fibMul) >> ix.shift
}

// NoteInsert indexes the tuple the window just accepted; call it
// immediately after every SlidingWindow.Insert on an indexed window. It
// performs no allocation: table growth is fixed at construction, and the
// periodic rebuild reuses the same arrays.
func (ix *KeyIndex) NoteInsert(key uint32) {
	if ix.used >= ix.limit {
		// Rebuild reindexes every resident — including the tuple this call
		// is noting, since the window insert has already happened.
		ix.Rebuild()
		return
	}
	minLive := ix.w.total - uint64(ix.w.count)
	i := ix.bucket(key)
	for {
		e := ix.ns[i]
		if e == emptySlot {
			ix.used++
			break
		}
		if e < minLive {
			break // stale entry: reclaim it in place
		}
		i = (i + 1) & ix.mask
	}
	ix.keys[i] = key
	ix.ns[i] = ix.w.total - 1
}

// AppendMatches appends every resident tuple whose key equals key to dst
// and returns the extended slice together with the number of table
// entries the probe chain examined — the work the kernel actually did,
// the currency a Comparisons() counter should report. Matches surface in
// probe-chain order, not window arrival order.
func (ix *KeyIndex) AppendMatches(key uint32, dst []Tuple) ([]Tuple, int) {
	minLive := ix.w.total - uint64(ix.w.count)
	ring := uint64(len(ix.w.buf))
	examined := 0
	for i := ix.bucket(key); ; i = (i + 1) & ix.mask {
		e := ix.ns[i]
		if e == emptySlot {
			return dst, examined
		}
		examined++
		if ix.keys[i] == key && e >= minLive {
			dst = append(dst, ix.w.buf[e%ring])
		}
	}
}

// Rebuild reindexes the window from scratch, dropping every stale entry.
// It runs automatically when the table's occupied fraction reaches half;
// call it manually only after SlidingWindow.Reset.
func (ix *KeyIndex) Rebuild() {
	for i := range ix.ns {
		ix.ns[i] = emptySlot
	}
	w := ix.w
	ix.used = w.count
	minLive := w.total - uint64(w.count)
	ring := uint64(len(w.buf))
	for j := uint64(0); j < uint64(w.count); j++ {
		n := minLive + j
		key := w.buf[n%ring].Key
		i := ix.bucket(key)
		for ix.ns[i] != emptySlot {
			i = (i + 1) & ix.mask
		}
		ix.keys[i] = key
		ix.ns[i] = n
	}
}
