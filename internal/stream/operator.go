package stream

import (
	"fmt"
	"strconv"
)

// Comparator is a hardware-friendly comparison operator applied between two
// 32-bit fields. Join cores and OP-Blocks implement the comparison as a
// small combinational circuit selected by this code.
type Comparator uint8

// Supported comparison circuits. The paper's experiments use an equi-join
// ("though there is no limitation on the condition(s) used"); the remaining
// codes exercise that generality.
const (
	CmpEQ Comparator = iota + 1
	CmpNE
	CmpLT
	CmpLE
	CmpGT
	CmpGE
)

// String implements fmt.Stringer.
func (c Comparator) String() string {
	switch c {
	case CmpEQ:
		return "="
	case CmpNE:
		return "!="
	case CmpLT:
		return "<"
	case CmpLE:
		return "<="
	case CmpGT:
		return ">"
	case CmpGE:
		return ">="
	default:
		return "cmp(" + strconv.Itoa(int(c)) + ")"
	}
}

// Eval applies the comparison to two 32-bit operands.
func (c Comparator) Eval(a, b uint32) bool {
	switch c {
	case CmpEQ:
		return a == b
	case CmpNE:
		return a != b
	case CmpLT:
		return a < b
	case CmpLE:
		return a <= b
	case CmpGT:
		return a > b
	case CmpGE:
		return a >= b
	default:
		return false
	}
}

// Valid reports whether c is one of the defined comparator codes.
func (c Comparator) Valid() bool { return c >= CmpEQ && c <= CmpGE }

// Field selects which half of the 64-bit tuple a condition reads.
type Field uint8

// Tuple fields addressable by conditions.
const (
	FieldKey Field = iota + 1
	FieldVal
)

// String implements fmt.Stringer.
func (f Field) String() string {
	switch f {
	case FieldKey:
		return "key"
	case FieldVal:
		return "val"
	default:
		return "field(" + strconv.Itoa(int(f)) + ")"
	}
}

// Extract reads the selected field from a tuple.
func (f Field) Extract(t Tuple) uint32 {
	switch f {
	case FieldKey:
		return t.Key
	case FieldVal:
		return t.Val
	default:
		return 0
	}
}

// Valid reports whether f is a defined field code.
func (f Field) Valid() bool { return f == FieldKey || f == FieldVal }

// JoinCondition is the dynamically programmable condition segment of a join
// operator: compare field LHS of the probing tuple against field RHS of the
// window tuple using Cmp. The zero value is invalid; use EquiJoinOnKey for
// the common case.
type JoinCondition struct {
	LHS Field
	RHS Field
	Cmp Comparator
}

// EquiJoinOnKey returns the equi-join condition on the 32-bit key field used
// throughout the paper's evaluation.
func EquiJoinOnKey() JoinCondition {
	return JoinCondition{LHS: FieldKey, RHS: FieldKey, Cmp: CmpEQ}
}

// Validate reports whether the condition is well formed.
func (jc JoinCondition) Validate() error {
	if !jc.LHS.Valid() {
		return fmt.Errorf("stream: invalid join condition LHS field %d", jc.LHS)
	}
	if !jc.RHS.Valid() {
		return fmt.Errorf("stream: invalid join condition RHS field %d", jc.RHS)
	}
	if !jc.Cmp.Valid() {
		return fmt.Errorf("stream: invalid join condition comparator %d", jc.Cmp)
	}
	return nil
}

// Match evaluates the condition with `probe` as the newly arrived tuple and
// `stored` as the window-resident tuple.
func (jc JoinCondition) Match(probe, stored Tuple) bool {
	return jc.Cmp.Eval(jc.LHS.Extract(probe), jc.RHS.Extract(stored))
}

// String implements fmt.Stringer.
func (jc JoinCondition) String() string {
	return fmt.Sprintf("probe.%s %s window.%s", jc.LHS, jc.Cmp, jc.RHS)
}

// SelectionCondition is a programmable single-tuple predicate of the form
// `field cmp constant` as implemented by selection OP-Blocks (e.g. Age > 25
// in the paper's Figure 7 query plan).
type SelectionCondition struct {
	Field Field
	Cmp   Comparator
	Const uint32
}

// Validate reports whether the condition is well formed.
func (sc SelectionCondition) Validate() error {
	if !sc.Field.Valid() {
		return fmt.Errorf("stream: invalid selection field %d", sc.Field)
	}
	if !sc.Cmp.Valid() {
		return fmt.Errorf("stream: invalid selection comparator %d", sc.Cmp)
	}
	return nil
}

// Match evaluates the predicate against one tuple.
func (sc SelectionCondition) Match(t Tuple) bool {
	return sc.Cmp.Eval(sc.Field.Extract(t), sc.Const)
}

// String implements fmt.Stringer.
func (sc SelectionCondition) String() string {
	return fmt.Sprintf("%s %s %d", sc.Field, sc.Cmp, sc.Const)
}

// JoinOperator is the full two-segment join operator instruction described
// in Section IV: "The first segment defines join parameters such as the
// number of join cores and the current join core position among them, while
// the second segment carries the join operator conditions." Programming it
// into a running join core takes the Operator Store 1 / Operator Store 2
// FSM states, one segment per state.
type JoinOperator struct {
	// Segment 1: join parameters.
	NumCores int // total join cores participating
	Position int // this core's position in [0, NumCores)

	// Segment 2: operator condition.
	Condition JoinCondition
}

// Validate reports whether the operator instruction is well formed for the
// core it is addressed to.
func (op JoinOperator) Validate() error {
	if op.NumCores <= 0 {
		return fmt.Errorf("stream: join operator NumCores must be positive, got %d", op.NumCores)
	}
	if op.Position < 0 || op.Position >= op.NumCores {
		return fmt.Errorf("stream: join operator Position %d out of range [0,%d)", op.Position, op.NumCores)
	}
	if err := op.Condition.Validate(); err != nil {
		return fmt.Errorf("stream: join operator condition: %w", err)
	}
	return nil
}

// Segment1 packs the join parameters into the first 64-bit instruction word.
func (op JoinOperator) Segment1() uint64 {
	return uint64(uint32(op.NumCores))<<32 | uint64(uint32(op.Position))
}

// Segment2 packs the condition into the second 64-bit instruction word.
func (op JoinOperator) Segment2() uint64 {
	return uint64(op.Condition.LHS)<<16 | uint64(op.Condition.RHS)<<8 | uint64(op.Condition.Cmp)
}

// DecodeJoinOperator reconstructs a JoinOperator from its two instruction
// segments. It is the inverse of Segment1/Segment2.
func DecodeJoinOperator(seg1, seg2 uint64) JoinOperator {
	return JoinOperator{
		NumCores: int(uint32(seg1 >> 32)),
		Position: int(uint32(seg1)),
		Condition: JoinCondition{
			LHS: Field(seg2 >> 16 & 0xFF),
			RHS: Field(seg2 >> 8 & 0xFF),
			Cmp: Comparator(seg2 & 0xFF),
		},
	}
}
