package stream

import (
	"testing"
	"testing/quick"
)

func TestNewSlidingWindowPanicsOnNonPositive(t *testing.T) {
	for _, capacity := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSlidingWindow(%d) did not panic", capacity)
				}
			}()
			NewSlidingWindow(capacity)
		}()
	}
}

func TestSlidingWindowFillAndExpire(t *testing.T) {
	w := NewSlidingWindow(3)
	for i := 0; i < 3; i++ {
		if _, expired := w.Insert(Tuple{Key: uint32(i), Seq: uint64(i)}); expired {
			t.Fatalf("unexpected expiry while filling at i=%d", i)
		}
	}
	if w.Len() != 3 {
		t.Fatalf("Len() = %d, want 3", w.Len())
	}
	expired, ok := w.Insert(Tuple{Key: 3, Seq: 3})
	if !ok {
		t.Fatal("expected expiry on insert into full window")
	}
	if expired.Key != 0 {
		t.Errorf("expired tuple key = %d, want 0 (oldest)", expired.Key)
	}
	want := []uint32{1, 2, 3}
	for i, k := range want {
		if got := w.At(i).Key; got != k {
			t.Errorf("At(%d).Key = %d, want %d", i, got, k)
		}
	}
}

func TestSlidingWindowAtPanicsOutOfRange(t *testing.T) {
	w := NewSlidingWindow(2)
	w.Insert(Tuple{Key: 1})
	for _, i := range []int{-1, 1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("At(%d) did not panic", i)
				}
			}()
			w.At(i)
		}()
	}
}

func TestSlidingWindowScanOrderAndEarlyStop(t *testing.T) {
	w := NewSlidingWindow(4)
	for i := 0; i < 6; i++ { // wraps twice
		w.Insert(Tuple{Key: uint32(i)})
	}
	var keys []uint32
	w.Scan(func(tu Tuple) bool {
		keys = append(keys, tu.Key)
		return true
	})
	want := []uint32{2, 3, 4, 5}
	if len(keys) != len(want) {
		t.Fatalf("scan visited %d tuples, want %d", len(keys), len(want))
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Errorf("scan[%d] = %d, want %d", i, keys[i], want[i])
		}
	}

	var visited int
	w.Scan(func(Tuple) bool {
		visited++
		return visited < 2
	})
	if visited != 2 {
		t.Errorf("early-stop scan visited %d, want 2", visited)
	}
}

func TestSlidingWindowReset(t *testing.T) {
	w := NewSlidingWindow(4)
	for i := 0; i < 10; i++ {
		w.Insert(Tuple{Key: uint32(i)})
	}
	w.Reset()
	if w.Len() != 0 {
		t.Fatalf("Len() after Reset = %d, want 0", w.Len())
	}
	w.Insert(Tuple{Key: 42})
	if got := w.At(0).Key; got != 42 {
		t.Errorf("At(0).Key after reset = %d, want 42", got)
	}
}

// TestSlidingWindowHoldsMostRecent is the core window invariant: after any
// insertion sequence, the window holds exactly the min(n, cap) most recent
// tuples in arrival order.
func TestSlidingWindowHoldsMostRecent(t *testing.T) {
	prop := func(capSeed uint8, n uint16) bool {
		capacity := int(capSeed%64) + 1
		w := NewSlidingWindow(capacity)
		total := int(n % 512)
		for i := 0; i < total; i++ {
			w.Insert(Tuple{Seq: uint64(i)})
		}
		wantLen := total
		if wantLen > capacity {
			wantLen = capacity
		}
		if w.Len() != wantLen {
			return false
		}
		first := total - wantLen
		for i := 0; i < wantLen; i++ {
			if w.At(i).Seq != uint64(first+i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// TestSlidingWindowExpiryIsFIFO verifies tuples expire in exactly arrival
// order once the window is full.
func TestSlidingWindowExpiryIsFIFO(t *testing.T) {
	prop := func(capSeed uint8, n uint16) bool {
		capacity := int(capSeed%32) + 1
		total := int(n%256) + capacity
		w := NewSlidingWindow(capacity)
		var expireSeqs []uint64
		for i := 0; i < total; i++ {
			if old, ok := w.Insert(Tuple{Seq: uint64(i)}); ok {
				expireSeqs = append(expireSeqs, old.Seq)
			}
		}
		for i, seq := range expireSeqs {
			if seq != uint64(i) {
				return false
			}
		}
		return len(expireSeqs) == total-capacity
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestSlidingWindowRemoveOldest(t *testing.T) {
	w := NewSlidingWindow(3)
	if _, ok := w.RemoveOldest(); ok {
		t.Fatal("RemoveOldest on empty window reported ok")
	}
	for i := 0; i < 5; i++ { // wraps: holds 2, 3, 4
		w.Insert(Tuple{Seq: uint64(i)})
	}
	got, ok := w.RemoveOldest()
	if !ok || got.Seq != 2 {
		t.Fatalf("RemoveOldest = %v, %v; want seq 2", got, ok)
	}
	if w.Len() != 2 {
		t.Fatalf("Len() = %d, want 2", w.Len())
	}
	// Insert after removal must preserve order: 3, 4, 9.
	w.Insert(Tuple{Seq: 9})
	want := []uint64{3, 4, 9}
	for i, seq := range want {
		if got := w.At(i).Seq; got != seq {
			t.Errorf("At(%d).Seq = %d, want %d", i, got, seq)
		}
	}
}

// TestSlidingWindowRemoveInsertInterleaved drives a random mix of inserts
// and removals against a reference slice implementation.
func TestSlidingWindowRemoveInsertInterleaved(t *testing.T) {
	w := NewSlidingWindow(4)
	var ref []Tuple
	seq := uint64(0)
	ops := []bool{true, true, false, true, true, true, true, false, false, true, false, true, true, true, true, true}
	for _, insert := range ops {
		if insert {
			t1 := Tuple{Seq: seq}
			seq++
			if len(ref) == 4 {
				ref = ref[1:]
			}
			ref = append(ref, t1)
			w.Insert(t1)
		} else {
			if len(ref) > 0 {
				ref = ref[1:]
			}
			w.RemoveOldest()
		}
		if w.Len() != len(ref) {
			t.Fatalf("Len() = %d, want %d", w.Len(), len(ref))
		}
		for i, want := range ref {
			if got := w.At(i); got != want {
				t.Fatalf("At(%d) = %v, want %v (ref %v)", i, got, want, ref)
			}
		}
	}
}

func TestSlidingWindowSnapshotMatchesScan(t *testing.T) {
	w := NewSlidingWindow(5)
	for i := 0; i < 8; i++ {
		w.Insert(Tuple{Seq: uint64(i)})
	}
	snap := w.Snapshot()
	if len(snap) != w.Len() {
		t.Fatalf("snapshot length %d != window length %d", len(snap), w.Len())
	}
	i := 0
	w.Scan(func(tu Tuple) bool {
		if snap[i] != tu {
			t.Errorf("snapshot[%d] = %v, scan saw %v", i, snap[i], tu)
		}
		i++
		return true
	})
}

// TestSlidingWindowSegmentsMatchScan: the zero-copy ring views must cover
// exactly the resident tuples in arrival order at every fill level and
// head position, including wrap-around and interleaved removals.
func TestSlidingWindowSegmentsMatchScan(t *testing.T) {
	w := NewSlidingWindow(5)
	check := func(step int) {
		older, newer := w.Segments()
		if len(older)+len(newer) != w.Len() {
			t.Fatalf("step %d: segments cover %d tuples, window holds %d", step, len(older)+len(newer), w.Len())
		}
		joined := append(append([]Tuple(nil), older...), newer...)
		i := 0
		w.Scan(func(tu Tuple) bool {
			if joined[i] != tu {
				t.Errorf("step %d: segments[%d] = %v, scan saw %v", step, i, joined[i], tu)
			}
			i++
			return true
		})
	}
	check(-1) // empty window: both views empty
	for i := 0; i < 17; i++ {
		w.Insert(Tuple{Seq: uint64(i)})
		check(i)
		if i%3 == 2 {
			w.RemoveOldest()
			check(i)
		}
	}
}
