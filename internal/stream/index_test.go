package stream

import (
	"math/rand"
	"testing"
)

// linearMatches is the oracle the index is checked against: a straight
// Segments() sweep collecting every resident tuple with the given key.
func linearMatches(w *SlidingWindow, key uint32) []Tuple {
	var out []Tuple
	older, newer := w.Segments()
	for _, t := range older {
		if t.Key == key {
			out = append(out, t)
		}
	}
	for _, t := range newer {
		if t.Key == key {
			out = append(out, t)
		}
	}
	return out
}

// sameTupleMultiset compares two match sets ignoring order: the hash
// kernel yields matches in probe-chain order, the scan in arrival order.
func sameTupleMultiset(a, b []Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	counts := make(map[Tuple]int, len(a))
	for _, t := range a {
		counts[t]++
	}
	for _, t := range b {
		if counts[t] == 0 {
			return false
		}
		counts[t]--
	}
	return true
}

// TestKeyIndexMatchesLinearScan is the window-expiry/index-consistency
// property test: a random sequence of Insert, RemoveOldest, and Reset
// operations on an indexed window, with the index's lookups checked
// against a linear Segments() scan after every step — for present keys,
// expired keys, and never-inserted keys alike.
func TestKeyIndexMatchesLinearScan(t *testing.T) {
	for _, capacity := range []int{1, 2, 7, 32, 257} {
		capacity := capacity
		t.Run("", func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000 + capacity)))
			w := NewSlidingWindow(capacity)
			ix := NewKeyIndex(w)
			const keyDomain = 16 // small domain: duplicates and expiries collide hard
			var seq uint64
			scratch := make([]Tuple, 0, capacity)
			for step := 0; step < 4000; step++ {
				switch op := rng.Intn(10); {
				case op < 7: // insert dominates, like a live stream
					tu := Tuple{Key: uint32(rng.Intn(keyDomain)), Val: rng.Uint32(), Seq: seq}
					seq++
					w.Insert(tu)
					ix.NoteInsert(tu.Key)
				case op < 9:
					w.RemoveOldest()
				default:
					if rng.Intn(50) == 0 { // rare full reset
						w.Reset()
						ix.Rebuild()
					}
				}
				// Every key in the domain (hit or miss), plus one foreign key.
				for key := uint32(0); key <= keyDomain; key++ {
					got, _ := ix.AppendMatches(key, scratch[:0])
					want := linearMatches(w, key)
					if !sameTupleMultiset(got, want) {
						t.Fatalf("cap=%d step=%d key=%d: index found %v, linear scan %v",
							capacity, step, key, got, want)
					}
				}
			}
		})
	}
}

// TestKeyIndexExaminedCounts: probe work is O(chain), and a miss on an
// empty index examines nothing.
func TestKeyIndexExaminedCounts(t *testing.T) {
	w := NewSlidingWindow(64)
	ix := NewKeyIndex(w)
	if _, examined := ix.AppendMatches(7, nil); examined != 0 {
		t.Fatalf("empty index examined %d entries, want 0", examined)
	}
	for i := 0; i < 64; i++ {
		w.Insert(Tuple{Key: 7, Val: uint32(i)})
		ix.NoteInsert(7)
	}
	matches, examined := ix.AppendMatches(7, nil)
	if len(matches) != 64 {
		t.Fatalf("got %d matches, want 64", len(matches))
	}
	if examined < 64 {
		t.Fatalf("examined %d < 64 matches", examined)
	}
}

// TestKeyIndexAllocFree: steady-state maintenance and lookups perform no
// heap allocation once the match scratch has reached capacity.
func TestKeyIndexAllocFree(t *testing.T) {
	const capacity = 1 << 10
	w := NewSlidingWindow(capacity)
	ix := NewKeyIndex(w)
	var k uint32
	scratch := make([]Tuple, 0, 64)
	allocs := testing.AllocsPerRun(5000, func() {
		w.Insert(Tuple{Key: k % 128, Val: k})
		ix.NoteInsert(k % 128)
		scratch, _ = ix.AppendMatches((k+1)%128, scratch[:0])
		k++
	})
	if allocs != 0 {
		t.Fatalf("insert+lookup steady state: %v allocs/op, want 0", allocs)
	}
}

// TestWordColumnTracksRing: WordSegments stays element-aligned with
// Segments across inserts, expiries, and removals.
func TestWordColumnTracksRing(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	w := NewSlidingWindow(37)
	for step := 0; step < 2000; step++ {
		if rng.Intn(4) == 0 {
			w.RemoveOldest()
		} else {
			w.Insert(Tuple{Key: rng.Uint32(), Val: rng.Uint32()})
		}
		tSeg := make([]Tuple, 0, w.Len())
		older, newer := w.Segments()
		tSeg = append(append(tSeg, older...), newer...)
		wSeg := make([]uint64, 0, w.Len())
		olderW, newerW := w.WordSegments()
		wSeg = append(append(wSeg, olderW...), newerW...)
		if len(tSeg) != len(wSeg) {
			t.Fatalf("step %d: %d tuples vs %d words", step, len(tSeg), len(wSeg))
		}
		for i := range tSeg {
			if tSeg[i].Word() != wSeg[i] {
				t.Fatalf("step %d pos %d: word column %x, tuple word %x", step, i, wSeg[i], tSeg[i].Word())
			}
		}
	}
}
