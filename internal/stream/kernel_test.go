package stream

import (
	"math/rand"
	"testing"
)

// TestBlockMaskMatchesComparatorEval cross-checks the block kernel's
// bitmask against scalar Comparator.Eval over random word blocks, for
// every comparator × field combination and block lengths 0..64.
func TestBlockMaskMatchesComparatorEval(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cmps := []Comparator{CmpEQ, CmpNE, CmpLT, CmpLE, CmpGT, CmpGE}
	fields := []Field{FieldKey, FieldVal}
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(BlockBits + 1)
		words := make([]uint64, n)
		for i := range words {
			// Narrow domain so equality actually fires.
			key := uint32(rng.Intn(8))
			val := uint32(rng.Intn(8))
			words[i] = Tuple{Key: key, Val: val}.Word()
		}
		lhs := uint32(rng.Intn(8))
		for _, cmp := range cmps {
			for _, field := range fields {
				mask := BlockMask(words, field, cmp, lhs)
				for i, w := range words {
					rhs := uint32(w)
					if field == FieldKey {
						rhs = uint32(w >> 32)
					}
					want := cmp.Eval(lhs, rhs)
					got := mask&(1<<uint(i)) != 0
					if got != want {
						t.Fatalf("trial %d cmp=%v field=%v lhs=%d words[%d]=%x: mask bit %v, Eval %v",
							trial, cmp, field, lhs, i, w, got, want)
					}
				}
			}
		}
	}
}

// TestBlockMaskTruncates: words past the 64-lane block are ignored, and
// an empty block yields an empty mask.
func TestBlockMaskTruncates(t *testing.T) {
	if m := BlockMask(nil, FieldKey, CmpEQ, 0); m != 0 {
		t.Fatalf("empty block mask = %x, want 0", m)
	}
	words := make([]uint64, BlockBits+8)
	for i := range words {
		words[i] = Tuple{Key: 5}.Word()
	}
	if m := BlockMask(words, FieldKey, CmpEQ, 5); m != ^uint64(0) {
		t.Fatalf("oversized block mask = %x, want all ones", m)
	}
}

func TestParseProbeKernel(t *testing.T) {
	cases := []struct {
		in   string
		want ProbeKernel
		ok   bool
	}{
		{"", KernelAuto, true},
		{"auto", KernelAuto, true},
		{"hash", KernelHash, true},
		{"scan", KernelScan, true},
		{"block-scan", KernelScan, true},
		{"simd", 0, false},
	}
	for _, c := range cases {
		got, err := ParseProbeKernel(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Fatalf("ParseProbeKernel(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Fatalf("ParseProbeKernel(%q) succeeded, want error", c.in)
		}
	}
	for _, k := range []ProbeKernel{KernelAuto, KernelHash, KernelScan} {
		if !k.Valid() {
			t.Fatalf("%v not Valid", k)
		}
		back, err := ParseProbeKernel(k.String())
		if err != nil || back != k {
			t.Fatalf("round-trip %v → %q → %v, %v", k, k.String(), back, err)
		}
	}
	if ProbeKernel(9).Valid() {
		t.Fatal("kernel code 9 reported Valid")
	}
}
