package stream

import (
	"strings"
	"testing"
)

func TestNewSchemaValidation(t *testing.T) {
	tests := []struct {
		name    string
		fields  []string
		wantErr string
	}{
		{"ok", []string{"id", "age"}, ""},
		{"empty", nil, "at least one field"},
		{"blank field", []string{"id", ""}, "empty field name"},
		{"duplicate", []string{"id", "id"}, "duplicate field"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewSchema("cust", tt.fields...)
			if tt.wantErr == "" {
				if err != nil {
					t.Fatalf("NewSchema() error = %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
				t.Fatalf("NewSchema() error = %v, want containing %q", err, tt.wantErr)
			}
		})
	}
}

func TestMustSchemaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustSchema with no fields did not panic")
		}
	}()
	MustSchema("bad")
}

func TestSchemaAccessors(t *testing.T) {
	s := MustSchema("customer", "id", "age", "gender")
	if s.Name() != "customer" {
		t.Errorf("Name() = %q", s.Name())
	}
	if s.Arity() != 3 {
		t.Errorf("Arity() = %d, want 3", s.Arity())
	}
	if s.WidthBits() != 96 {
		t.Errorf("WidthBits() = %d, want 96", s.WidthBits())
	}
	i, err := s.FieldIndex("age")
	if err != nil || i != 1 {
		t.Errorf("FieldIndex(age) = %d, %v; want 1, nil", i, err)
	}
	if _, err := s.FieldIndex("missing"); err == nil {
		t.Error("FieldIndex(missing) succeeded, want error")
	}
	fields := s.Fields()
	fields[0] = "mutated"
	if s.fields[0] != "id" {
		t.Error("Fields() did not return a defensive copy")
	}
	if got, want := s.String(), "customer(id, age, gender)"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestSchemaSegments(t *testing.T) {
	s := MustSchema("wide", "a", "b", "c", "d", "e")
	tests := []struct {
		lanes int
		want  int
	}{
		{1, 5},
		{2, 3},
		{4, 2},
		{5, 1},
		{8, 1},
	}
	for _, tt := range tests {
		if got := s.Segments(tt.lanes); got != tt.want {
			t.Errorf("Segments(%d) = %d, want %d", tt.lanes, got, tt.want)
		}
	}
}

func TestSchemaSegmentsPanicsOnNonPositive(t *testing.T) {
	s := MustSchema("x", "a")
	defer func() {
		if recover() == nil {
			t.Fatal("Segments(0) did not panic")
		}
	}()
	s.Segments(0)
}

func TestRecordLifecycle(t *testing.T) {
	s := MustSchema("customer", "id", "age", "gender")
	if _, err := NewRecord(nil, 1); err == nil {
		t.Error("NewRecord(nil) succeeded, want error")
	}
	if _, err := NewRecord(s, 1, 2); err == nil {
		t.Error("arity mismatch accepted")
	}
	r, err := NewRecord(s, 7, 31, 1)
	if err != nil {
		t.Fatalf("NewRecord() error = %v", err)
	}
	age, err := r.Get("age")
	if err != nil || age != 31 {
		t.Errorf("Get(age) = %d, %v; want 31, nil", age, err)
	}
	if _, err := r.Get("missing"); err == nil {
		t.Error("Get(missing) succeeded, want error")
	}
	if got, want := r.String(), "customer{id=7, age=31, gender=1}"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestRecordProject(t *testing.T) {
	s := MustSchema("customer", "id", "age", "gender")
	r, err := NewRecord(s, 7, 31, 1)
	if err != nil {
		t.Fatalf("NewRecord() error = %v", err)
	}
	r.Seq = 99
	p, err := r.Project("gender", "id")
	if err != nil {
		t.Fatalf("Project() error = %v", err)
	}
	if p.Schema.Arity() != 2 {
		t.Fatalf("projected arity = %d, want 2", p.Schema.Arity())
	}
	g, _ := p.Get("gender")
	id, _ := p.Get("id")
	if g != 1 || id != 7 {
		t.Errorf("projected values gender=%d id=%d, want 1 and 7", g, id)
	}
	if p.Seq != 99 {
		t.Errorf("projection dropped Seq: got %d, want 99", p.Seq)
	}
	if _, err := r.Project("missing"); err == nil {
		t.Error("Project(missing) succeeded, want error")
	}
}
