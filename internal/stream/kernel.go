package stream

import "fmt"

// Probe kernels: the two data-parallel shapes a software join core can
// give its window probe, mirroring the paper's accelerator landscape.
// The hash kernel is the software analogue of a GPU hash-join probe —
// O(matches) lookups against an incrementally maintained index (KeyIndex)
// instead of an O(W) sweep. The block-scan kernel is the software
// analogue of a SIMD lane sweep — the predicate is evaluated over the
// window's dense word column in 64-wide blocks producing a hit bitmask,
// and full tuples are materialized only for set bits.

// ProbeKernel selects which probe kernel a join core runs.
type ProbeKernel uint8

const (
	// KernelAuto picks per condition: the hash kernel for the
	// equi-join-on-key condition, the block-scan kernel otherwise.
	KernelAuto ProbeKernel = iota
	// KernelHash probes a per-core incremental hash index (equi-join on
	// key only).
	KernelHash
	// KernelScan sweeps the window's word column in 64-wide bitmask
	// blocks; it evaluates any join condition.
	KernelScan
)

// String implements fmt.Stringer.
func (k ProbeKernel) String() string {
	switch k {
	case KernelAuto:
		return "auto"
	case KernelHash:
		return "hash"
	case KernelScan:
		return "scan"
	default:
		return fmt.Sprintf("kernel(%d)", uint8(k))
	}
}

// Valid reports whether k is a defined kernel code.
func (k ProbeKernel) Valid() bool { return k <= KernelScan }

// ParseProbeKernel maps a command-line name to a probe kernel. The empty
// string parses as KernelAuto.
func ParseProbeKernel(name string) (ProbeKernel, error) {
	switch name {
	case "", "auto":
		return KernelAuto, nil
	case "hash":
		return KernelHash, nil
	case "scan", "block-scan":
		return KernelScan, nil
	default:
		return 0, fmt.Errorf("stream: unknown probe kernel %q (want auto, hash, or scan)", name)
	}
}

// BlockBits is the lane width of the block-scan kernel: how many window
// words one BlockMask call evaluates into a single hit bitmask.
const BlockBits = 64

// BlockMask evaluates cmp(lhs, field(word)) across up to 64 packed bus
// words (key in the high 32 bits, value in the low — Tuple.Word layout)
// and returns the bitmask of hits, bit i for words[i]. The comparator
// dispatch happens once per block, not per element, so each inner loop is
// a tight compare-and-set over a dense array — the branch-reduced
// software stand-in for a SIMD lane sweep, with result materialization
// (the unpredictable branch) deferred to the caller's walk of the set
// bits. Words beyond the first 64 are ignored.
func BlockMask(words []uint64, field Field, cmp Comparator, lhs uint32) uint64 {
	if len(words) > BlockBits {
		words = words[:BlockBits]
	}
	var shift uint
	if field == FieldKey {
		shift = 32
	}
	var m uint64
	switch cmp {
	case CmpEQ:
		for i := range words {
			if lhs == uint32(words[i]>>shift) {
				m |= 1 << uint(i)
			}
		}
	case CmpNE:
		for i := range words {
			if lhs != uint32(words[i]>>shift) {
				m |= 1 << uint(i)
			}
		}
	case CmpLT:
		for i := range words {
			if lhs < uint32(words[i]>>shift) {
				m |= 1 << uint(i)
			}
		}
	case CmpLE:
		for i := range words {
			if lhs <= uint32(words[i]>>shift) {
				m |= 1 << uint(i)
			}
		}
	case CmpGT:
		for i := range words {
			if lhs > uint32(words[i]>>shift) {
				m |= 1 << uint(i)
			}
		}
	case CmpGE:
		for i := range words {
			if lhs >= uint32(words[i]>>shift) {
				m |= 1 << uint(i)
			}
		}
	}
	return m
}
