package stream

import (
	"testing"
	"testing/quick"
)

func TestSideOpposite(t *testing.T) {
	if got := SideR.Opposite(); got != SideS {
		t.Errorf("SideR.Opposite() = %v, want SideS", got)
	}
	if got := SideS.Opposite(); got != SideR {
		t.Errorf("SideS.Opposite() = %v, want SideR", got)
	}
}

func TestSideOppositePanicsOnNone(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SideNone.Opposite() did not panic")
		}
	}()
	SideNone.Opposite()
}

func TestSideString(t *testing.T) {
	tests := []struct {
		side Side
		want string
	}{
		{SideR, "R"},
		{SideS, "S"},
		{SideNone, "none"},
	}
	for _, tt := range tests {
		if got := tt.side.String(); got != tt.want {
			t.Errorf("Side(%d).String() = %q, want %q", tt.side, got, tt.want)
		}
	}
}

func TestHeaderSideRoundTrip(t *testing.T) {
	for _, side := range []Side{SideR, SideS} {
		if got := HeaderFor(side).Side(); got != side {
			t.Errorf("HeaderFor(%v).Side() = %v, want %v", side, got, side)
		}
	}
	if got := HeaderFor(SideNone); got != HeaderIdle {
		t.Errorf("HeaderFor(SideNone) = %v, want HeaderIdle", got)
	}
	if got := HeaderOperator.Side(); got != SideNone {
		t.Errorf("HeaderOperator.Side() = %v, want SideNone", got)
	}
}

func TestHeaderString(t *testing.T) {
	tests := []struct {
		h    Header
		want string
	}{
		{HeaderIdle, "idle"},
		{HeaderTupleR, "tuple-R"},
		{HeaderTupleS, "tuple-S"},
		{HeaderOperator, "operator"},
		{Header(9), "header(9)"},
	}
	for _, tt := range tests {
		if got := tt.h.String(); got != tt.want {
			t.Errorf("Header(%d).String() = %q, want %q", tt.h, got, tt.want)
		}
	}
}

func TestTupleWordRoundTrip(t *testing.T) {
	prop := func(key, val uint32) bool {
		in := Tuple{Key: key, Val: val}
		out := TupleFromWord(in.Word())
		return out.Key == key && out.Val == val
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestTupleWordLayout(t *testing.T) {
	// The key occupies the high half of the 64-bit bus word.
	tu := Tuple{Key: 0xDEADBEEF, Val: 0x01020304}
	if got, want := tu.Word(), uint64(0xDEADBEEF01020304); got != want {
		t.Errorf("Word() = %#x, want %#x", got, want)
	}
}

func TestResultPairID(t *testing.T) {
	r := Result{R: Tuple{Seq: 7}, S: Tuple{Seq: 11}}
	if got, want := r.PairID(), uint64(7<<32|11); got != want {
		t.Errorf("PairID() = %d, want %d", got, want)
	}
}

func TestResultPairIDDistinct(t *testing.T) {
	seen := make(map[uint64]bool)
	for rs := uint64(0); rs < 32; rs++ {
		for ss := uint64(0); ss < 32; ss++ {
			id := (Result{R: Tuple{Seq: rs}, S: Tuple{Seq: ss}}).PairID()
			if seen[id] {
				t.Fatalf("duplicate PairID %d for rs=%d ss=%d", id, rs, ss)
			}
			seen[id] = true
		}
	}
}
