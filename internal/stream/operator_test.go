package stream

import (
	"testing"
	"testing/quick"
)

func TestComparatorEval(t *testing.T) {
	tests := []struct {
		cmp  Comparator
		a, b uint32
		want bool
	}{
		{CmpEQ, 5, 5, true},
		{CmpEQ, 5, 6, false},
		{CmpNE, 5, 6, true},
		{CmpNE, 5, 5, false},
		{CmpLT, 4, 5, true},
		{CmpLT, 5, 5, false},
		{CmpLE, 5, 5, true},
		{CmpLE, 6, 5, false},
		{CmpGT, 6, 5, true},
		{CmpGT, 5, 5, false},
		{CmpGE, 5, 5, true},
		{CmpGE, 4, 5, false},
		{Comparator(0), 1, 1, false}, // invalid comparator never matches
	}
	for _, tt := range tests {
		if got := tt.cmp.Eval(tt.a, tt.b); got != tt.want {
			t.Errorf("%v.Eval(%d, %d) = %v, want %v", tt.cmp, tt.a, tt.b, got, tt.want)
		}
	}
}

func TestComparatorStringAndValid(t *testing.T) {
	valid := map[Comparator]string{
		CmpEQ: "=", CmpNE: "!=", CmpLT: "<", CmpLE: "<=", CmpGT: ">", CmpGE: ">=",
	}
	for cmp, want := range valid {
		if got := cmp.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", cmp, got, want)
		}
		if !cmp.Valid() {
			t.Errorf("%v.Valid() = false, want true", cmp)
		}
	}
	if Comparator(0).Valid() || Comparator(200).Valid() {
		t.Error("out-of-range comparators reported valid")
	}
}

func TestFieldExtract(t *testing.T) {
	tu := Tuple{Key: 10, Val: 20}
	if got := FieldKey.Extract(tu); got != 10 {
		t.Errorf("FieldKey.Extract = %d, want 10", got)
	}
	if got := FieldVal.Extract(tu); got != 20 {
		t.Errorf("FieldVal.Extract = %d, want 20", got)
	}
	if got := Field(0).Extract(tu); got != 0 {
		t.Errorf("invalid field Extract = %d, want 0", got)
	}
}

func TestEquiJoinOnKey(t *testing.T) {
	jc := EquiJoinOnKey()
	if err := jc.Validate(); err != nil {
		t.Fatalf("EquiJoinOnKey().Validate() = %v", err)
	}
	if !jc.Match(Tuple{Key: 3}, Tuple{Key: 3}) {
		t.Error("equal keys did not match")
	}
	if jc.Match(Tuple{Key: 3}, Tuple{Key: 4}) {
		t.Error("unequal keys matched")
	}
}

func TestJoinConditionValidate(t *testing.T) {
	tests := []struct {
		name    string
		jc      JoinCondition
		wantErr bool
	}{
		{"valid", JoinCondition{FieldKey, FieldVal, CmpLT}, false},
		{"bad lhs", JoinCondition{Field(0), FieldVal, CmpLT}, true},
		{"bad rhs", JoinCondition{FieldKey, Field(9), CmpLT}, true},
		{"bad cmp", JoinCondition{FieldKey, FieldVal, Comparator(0)}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.jc.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestSelectionCondition(t *testing.T) {
	sc := SelectionCondition{Field: FieldVal, Cmp: CmpGT, Const: 25} // Age > 25
	if err := sc.Validate(); err != nil {
		t.Fatalf("Validate() = %v", err)
	}
	if !sc.Match(Tuple{Val: 30}) {
		t.Error("val 30 should pass Age > 25")
	}
	if sc.Match(Tuple{Val: 25}) {
		t.Error("val 25 should fail Age > 25")
	}
	bad := SelectionCondition{Field: Field(7), Cmp: CmpGT}
	if bad.Validate() == nil {
		t.Error("invalid field accepted")
	}
	bad2 := SelectionCondition{Field: FieldKey, Cmp: Comparator(0)}
	if bad2.Validate() == nil {
		t.Error("invalid comparator accepted")
	}
}

func TestJoinOperatorValidate(t *testing.T) {
	tests := []struct {
		name    string
		op      JoinOperator
		wantErr bool
	}{
		{"valid", JoinOperator{NumCores: 4, Position: 3, Condition: EquiJoinOnKey()}, false},
		{"zero cores", JoinOperator{NumCores: 0, Position: 0, Condition: EquiJoinOnKey()}, true},
		{"position too high", JoinOperator{NumCores: 4, Position: 4, Condition: EquiJoinOnKey()}, true},
		{"negative position", JoinOperator{NumCores: 4, Position: -1, Condition: EquiJoinOnKey()}, true},
		{"bad condition", JoinOperator{NumCores: 4, Position: 0}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.op.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

// TestJoinOperatorSegmentsRoundTrip checks that the two-segment instruction
// encoding (Operator Store 1 / Operator Store 2) is lossless.
func TestJoinOperatorSegmentsRoundTrip(t *testing.T) {
	prop := func(cores uint16, posSeed uint16, lhs, rhs, cmp uint8) bool {
		n := int(cores%1024) + 1
		op := JoinOperator{
			NumCores: n,
			Position: int(posSeed) % n,
			Condition: JoinCondition{
				LHS: Field(lhs%2 + 1),
				RHS: Field(rhs%2 + 1),
				Cmp: Comparator(cmp%6 + 1),
			},
		}
		got := DecodeJoinOperator(op.Segment1(), op.Segment2())
		return got == op
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
