package stream

import (
	"fmt"
	"strings"
)

// Schema describes the layout of a multi-field event record as it travels
// through the FQP fabric. Each field occupies one 32-bit lane on the data
// bus. Schemas of varying size are the motivation for the paper's
// "parametrized data segments": the fabric's wiring budget fixes how many
// lanes a single bus transfer carries, and wider records are vertically
// partitioned into several segments.
type Schema struct {
	name   string
	fields []string
	index  map[string]int
}

// NewSchema builds a schema from an ordered field list. Field names must be
// unique and non-empty.
func NewSchema(name string, fields ...string) (*Schema, error) {
	if len(fields) == 0 {
		return nil, fmt.Errorf("stream: schema %q must have at least one field", name)
	}
	idx := make(map[string]int, len(fields))
	for i, f := range fields {
		if f == "" {
			return nil, fmt.Errorf("stream: schema %q has an empty field name at position %d", name, i)
		}
		if _, dup := idx[f]; dup {
			return nil, fmt.Errorf("stream: schema %q has duplicate field %q", name, f)
		}
		idx[f] = i
	}
	return &Schema{name: name, fields: append([]string(nil), fields...), index: idx}, nil
}

// MustSchema is NewSchema that panics on error, for static declarations.
func MustSchema(name string, fields ...string) *Schema {
	s, err := NewSchema(name, fields...)
	if err != nil {
		panic(err)
	}
	return s
}

// Name returns the schema (stream) name.
func (s *Schema) Name() string { return s.name }

// Arity returns the number of fields.
func (s *Schema) Arity() int { return len(s.fields) }

// Fields returns a copy of the ordered field names.
func (s *Schema) Fields() []string { return append([]string(nil), s.fields...) }

// FieldIndex returns the lane index of a named field.
func (s *Schema) FieldIndex(name string) (int, error) {
	i, ok := s.index[name]
	if !ok {
		return 0, fmt.Errorf("stream: schema %q has no field %q", s.name, name)
	}
	return i, nil
}

// WidthBits returns the wire width of one record under this schema,
// excluding the 2-bit bus header.
func (s *Schema) WidthBits() int { return 32 * len(s.fields) }

// Segments returns how many bus transfers a record needs when the wiring
// budget provides lanesPerSegment 32-bit lanes per transfer (the vertical
// partitioning of "parametrized data segments").
func (s *Schema) Segments(lanesPerSegment int) int {
	if lanesPerSegment <= 0 {
		panic(fmt.Sprintf("stream: lanesPerSegment must be positive, got %d", lanesPerSegment))
	}
	return (len(s.fields) + lanesPerSegment - 1) / lanesPerSegment
}

// String implements fmt.Stringer.
func (s *Schema) String() string {
	return s.name + "(" + strings.Join(s.fields, ", ") + ")"
}

// Record is one event under a schema: a value per field, in schema order.
type Record struct {
	Schema *Schema
	Values []uint32
	Seq    uint64
}

// NewRecord builds a record, validating arity against the schema.
func NewRecord(s *Schema, values ...uint32) (Record, error) {
	if s == nil {
		return Record{}, fmt.Errorf("stream: record requires a schema")
	}
	if len(values) != s.Arity() {
		return Record{}, fmt.Errorf("stream: record for %q needs %d values, got %d", s.Name(), s.Arity(), len(values))
	}
	return Record{Schema: s, Values: append([]uint32(nil), values...)}, nil
}

// Get returns the value of a named field.
func (r Record) Get(field string) (uint32, error) {
	i, err := r.Schema.FieldIndex(field)
	if err != nil {
		return 0, err
	}
	return r.Values[i], nil
}

// Project returns a new record containing only the named fields, under a
// derived schema. This is the projection OP-Block behaviour.
func (r Record) Project(fields ...string) (Record, error) {
	out := make([]uint32, 0, len(fields))
	for _, f := range fields {
		v, err := r.Get(f)
		if err != nil {
			return Record{}, err
		}
		out = append(out, v)
	}
	sub, err := NewSchema(r.Schema.Name()+"_proj", fields...)
	if err != nil {
		return Record{}, err
	}
	rec, err := NewRecord(sub, out...)
	if err != nil {
		return Record{}, err
	}
	rec.Seq = r.Seq
	return rec, nil
}

// String implements fmt.Stringer.
func (r Record) String() string {
	var b strings.Builder
	b.WriteString(r.Schema.Name())
	b.WriteByte('{')
	for i, f := range r.Schema.fields {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s=%d", f, r.Values[i])
	}
	b.WriteByte('}')
	return b.String()
}
