// Package stream provides the streaming substrate shared by every engine in
// this repository: fixed-width tuples as they appear on the hardware data
// bus, sliding-window semantics, relational operators over tuples, and the
// continuous-query abstract syntax consumed by the FQP compilers.
//
// The tuple layout follows the paper's experimental setup (Section V): input
// streams consist of 64-bit tuples carried on a data bus with a 2-bit header
// that distinguishes a new join operator from a tuple belonging to either
// the R or the S stream. Result tuples are twice the input width because a
// result is the concatenation of the two inputs that met the join condition.
package stream

import (
	"fmt"
	"strconv"
)

// Side identifies which input stream a tuple belongs to.
type Side uint8

// Streams of a binary stream join. A third value, SideNone, is the zero
// value and marks tuples that carry no stream affiliation (e.g. operator
// words).
const (
	SideNone Side = iota
	SideR
	SideS
)

// Opposite returns the other stream: R for S and S for R.
// It panics for SideNone, which has no opposite.
func (s Side) Opposite() Side {
	switch s {
	case SideR:
		return SideS
	case SideS:
		return SideR
	default:
		panic("stream: SideNone has no opposite side")
	}
}

// String returns "R", "S", or "none".
func (s Side) String() string {
	switch s {
	case SideR:
		return "R"
	case SideS:
		return "S"
	default:
		return "none"
	}
}

// Header is the 2-bit bus header that precedes every word on the data bus
// (Section IV: "including their 2-bit headers. The header defines whether we
// are dealing with a new join operator or a tuple belonging to either the R
// or S stream").
type Header uint8

// Bus header values. HeaderIdle marks an empty bus cycle.
const (
	HeaderIdle Header = iota
	HeaderTupleR
	HeaderTupleS
	HeaderOperator
)

// String implements fmt.Stringer.
func (h Header) String() string {
	switch h {
	case HeaderIdle:
		return "idle"
	case HeaderTupleR:
		return "tuple-R"
	case HeaderTupleS:
		return "tuple-S"
	case HeaderOperator:
		return "operator"
	default:
		return "header(" + strconv.Itoa(int(h)) + ")"
	}
}

// Side maps a tuple header to the stream it belongs to.
func (h Header) Side() Side {
	switch h {
	case HeaderTupleR:
		return SideR
	case HeaderTupleS:
		return SideS
	default:
		return SideNone
	}
}

// HeaderFor maps a stream side to its bus header.
func HeaderFor(s Side) Header {
	switch s {
	case SideR:
		return HeaderTupleR
	case SideS:
		return HeaderTupleS
	default:
		return HeaderIdle
	}
}

// Tuple is a 64-bit stream tuple: a 32-bit join key and a 32-bit payload
// value, exactly the width used in the paper's hardware experiments. Seq
// and Tag are simulation metadata, not part of the 64-bit wire format: Seq
// is the arrival sequence number within the tuple's own stream (so
// correctness checkers can identify tuples uniquely), and Tag is the global
// arrival number across both streams (the ordering token the low-latency
// handshake join's replicas compare against to keep pairings exactly-once).
type Tuple struct {
	Key uint32
	Val uint32
	Seq uint64
	Tag uint64
}

// Word packs the wire-visible portion of the tuple into the 64-bit bus word.
func (t Tuple) Word() uint64 {
	return uint64(t.Key)<<32 | uint64(t.Val)
}

// TupleFromWord unpacks a 64-bit bus word into a Tuple. The sequence number
// is not carried on the wire and is left zero.
func TupleFromWord(w uint64) Tuple {
	return Tuple{Key: uint32(w >> 32), Val: uint32(w)}
}

// String implements fmt.Stringer.
func (t Tuple) String() string {
	return fmt.Sprintf("(key=%d val=%d seq=%d)", t.Key, t.Val, t.Seq)
}

// Result is a join result: the concatenation of one R tuple and one S tuple
// that satisfied the join condition. On the hardware result bus its width is
// twice the input data width, not counting the header.
type Result struct {
	R Tuple
	S Tuple
}

// String implements fmt.Stringer.
func (r Result) String() string {
	return fmt.Sprintf("[R%s ⋈ S%s]", r.R, r.S)
}

// PairID returns a unique identifier of the (R, S) pairing based on the two
// arrival sequence numbers. Correctness checkers use it to verify the
// exactly-once pairing invariant.
func (r Result) PairID() uint64 {
	return r.R.Seq<<32 | r.S.Seq&0xFFFFFFFF
}
