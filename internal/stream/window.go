package stream

import "fmt"

// SlidingWindow is a count-based (tuple-count) sliding window over one
// stream, the abstraction that turns an unbounded stream into a finite
// relation (Section III). It behaves exactly like the circular window
// buffers realized in BRAM on the hardware join cores: a fixed-capacity
// ring where inserting into a full window expires the oldest tuple.
//
// Alongside the tuple ring the window maintains a structure-of-arrays
// column of the packed 64-bit bus words (Tuple.Word: key in the high
// half, value in the low half), kept in sync on every mutation. Probe
// kernels scan this flat column instead of loading whole Tuple structs —
// the cache-friendly dense-key-array layout the paper's GPU and FPGA
// joins owe their data parallelism to — and materialize full tuples from
// the ring only for actual matches.
//
// The zero value is not usable; construct with NewSlidingWindow.
type SlidingWindow struct {
	buf   []Tuple  // fixed backing store of len == capacity
	words []uint64 // SoA column: words[i] == buf[i].Word(), same ring layout
	head  int      // position of the oldest tuple
	count int
	total uint64 // inserts ever accepted (Reset zeroes it)
}

// NewSlidingWindow returns an empty window with the given capacity.
// It panics if capacity is not positive, matching the hardware where a
// zero-entry BRAM cannot be instantiated.
func NewSlidingWindow(capacity int) *SlidingWindow {
	if capacity <= 0 {
		panic(fmt.Sprintf("stream: window capacity must be positive, got %d", capacity))
	}
	return &SlidingWindow{buf: make([]Tuple, capacity), words: make([]uint64, capacity)}
}

// Cap returns the window capacity.
func (w *SlidingWindow) Cap() int { return len(w.buf) }

// Len returns the number of tuples currently resident.
func (w *SlidingWindow) Len() int { return w.count }

// Total returns how many tuples the window has ever accepted. Together
// with Len it defines the resident insert-number range [Total-Len, Total),
// the generation check indexes use to recognize expired entries without
// tombstones. The n-th accepted tuple (counting from zero since the last
// Reset) always occupies ring slot n mod Cap — an invariant of the
// ring arithmetic that holds across expiries and RemoveOldest.
func (w *SlidingWindow) Total() uint64 { return w.total }

// Insert stores t, expiring the oldest resident tuple when full. It returns
// the expired tuple and whether an expiry happened.
func (w *SlidingWindow) Insert(t Tuple) (expired Tuple, ok bool) {
	w.total++
	if w.count < len(w.buf) {
		i := (w.head + w.count) % len(w.buf)
		w.buf[i] = t
		w.words[i] = t.Word()
		w.count++
		return Tuple{}, false
	}
	expired = w.buf[w.head]
	w.buf[w.head] = t
	w.words[w.head] = t.Word()
	w.head = (w.head + 1) % len(w.buf)
	return expired, true
}

// At returns the i-th tuple in arrival order (0 = oldest resident). It
// panics if i is out of range, mirroring a BRAM address violation.
func (w *SlidingWindow) At(i int) Tuple {
	if i < 0 || i >= w.count {
		panic(fmt.Sprintf("stream: window index %d out of range [0,%d)", i, w.count))
	}
	return w.buf[(w.head+i)%len(w.buf)]
}

// RemoveOldest removes and returns the oldest resident tuple. It reports
// false on an empty window. Bi-flow join cores use it to hand their oldest
// tuple to the neighbouring core (or to expiry) during the coordinated
// neighbour-to-neighbour transfer.
func (w *SlidingWindow) RemoveOldest() (Tuple, bool) {
	if w.count == 0 {
		return Tuple{}, false
	}
	t := w.buf[w.head]
	w.head = (w.head + 1) % len(w.buf)
	w.count--
	return t, true
}

// Scan calls fn for every resident tuple in arrival order (oldest first),
// the access pattern of the Processing Core's one-read-per-cycle window
// scan. Scanning stops early if fn returns false.
func (w *SlidingWindow) Scan(fn func(Tuple) bool) {
	for i := 0; i < w.count; i++ {
		if !fn(w.buf[(w.head+i)%len(w.buf)]) {
			return
		}
	}
}

// Segments returns the resident tuples as up to two contiguous views of
// the backing ring, in arrival order: older runs from the oldest tuple to
// the end of the ring, newer holds the wrapped-around tail (nil when the
// contents are contiguous). The views alias the window's storage — treat
// them as read-only, valid only until the next Insert, RemoveOldest, or
// Reset. Hot probe loops scan them directly, the software analogue of the
// Processing Core's straight BRAM sweep, without Scan's per-element
// closure call.
func (w *SlidingWindow) Segments() (older, newer []Tuple) {
	if w.head+w.count <= len(w.buf) {
		return w.buf[w.head : w.head+w.count], nil
	}
	return w.buf[w.head:], w.buf[:w.head+w.count-len(w.buf)]
}

// WordSegments mirrors Segments over the packed word column: the same
// older/newer split, element-aligned with the tuple views, so a kernel
// can sweep the dense words and materialize tuples only for hits. The
// views alias the window's storage under the same validity rules.
func (w *SlidingWindow) WordSegments() (older, newer []uint64) {
	if w.head+w.count <= len(w.words) {
		return w.words[w.head : w.head+w.count], nil
	}
	return w.words[w.head:], w.words[:w.head+w.count-len(w.words)]
}

// Snapshot returns the resident tuples in arrival order as a fresh slice.
func (w *SlidingWindow) Snapshot() []Tuple {
	out := make([]Tuple, 0, w.count)
	w.Scan(func(t Tuple) bool {
		out = append(out, t)
		return true
	})
	return out
}

// Reset empties the window without releasing its storage. Indexes built
// over the window (KeyIndex) must be Rebuilt afterwards: Reset restarts
// the insert-number generation.
func (w *SlidingWindow) Reset() {
	w.head = 0
	w.count = 0
	w.total = 0
}
