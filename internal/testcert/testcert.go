// Package testcert generates throwaway self-signed TLS certificates for
// loopback tests of the secured stream-join service. It is test support
// code: nothing outside _test files should import it, and nothing it
// produces is fit for real deployments (README.md has the cert-generation
// one-liner for those).
package testcert

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"math/big"
	"net"
	"time"
)

// New generates a fresh self-signed ECDSA P-256 certificate for
// 127.0.0.1/::1/localhost and returns the matched pair of TLS
// configurations: a server config serving the certificate and a client
// config trusting exactly that certificate (no system roots).
func New() (serverCfg, clientCfg *tls.Config, err error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, nil, err
	}
	tmpl := x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: "streamd-test"},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(time.Hour),
		KeyUsage:              x509.KeyUsageDigitalSignature | x509.KeyUsageCertSign,
		ExtKeyUsage:           []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		BasicConstraintsValid: true,
		IsCA:                  true,
		IPAddresses:           []net.IP{net.IPv4(127, 0, 0, 1), net.IPv6loopback},
		DNSNames:              []string{"localhost"},
	}
	der, err := x509.CreateCertificate(rand.Reader, &tmpl, &tmpl, &key.PublicKey, key)
	if err != nil {
		return nil, nil, err
	}
	leaf, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, nil, err
	}
	pool := x509.NewCertPool()
	pool.AddCert(leaf)
	serverCfg = &tls.Config{
		Certificates: []tls.Certificate{{Certificate: [][]byte{der}, PrivateKey: key, Leaf: leaf}},
	}
	clientCfg = &tls.Config{RootCAs: pool}
	return serverCfg, clientCfg, nil
}
