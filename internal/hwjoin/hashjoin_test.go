package hwjoin

import (
	"math/rand"
	"testing"

	"accelstream/internal/core"
	"accelstream/internal/stream"
)

// TestHashJoinMatchesOracle: the hash-join cores must produce exactly the
// nested-loop (= oracle) result multiset.
func TestHashJoinMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	inputs := randomInputs(rng, 800, 12)
	d, err := BuildUniFlow(UniFlowConfig{
		NumCores:   8,
		WindowSize: 64,
		Algorithm:  HashJoin,
	}, true, inputsGenerator(inputs))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.RunToQuiescence(5_000_000); err != nil {
		t.Fatal(err)
	}
	if err := core.VerifyExactlyOnce(64, stream.EquiJoinOnKey(), inputs, d.Sink().Results()); err != nil {
		t.Error(err)
	}
	if d.Sink().Drained() == 0 {
		t.Error("no results; vacuous test")
	}
}

// TestHashJoinRejectsThetaConditions: buckets only support the equi-join.
func TestHashJoinRejectsThetaConditions(t *testing.T) {
	_, err := BuildUniFlow(UniFlowConfig{
		NumCores:   2,
		WindowSize: 8,
		Algorithm:  HashJoin,
		Condition:  stream.JoinCondition{LHS: stream.FieldKey, RHS: stream.FieldKey, Cmp: stream.CmpLT},
	}, false, func() (Flit, bool) { return Flit{}, false })
	if err == nil {
		t.Fatal("hash join with a θ-condition was accepted")
	}
}

// TestHashJoinIsIngestBound: with distinct keys the bucket scan is empty,
// so throughput approaches one tuple per cycle regardless of window size —
// versus the nested-loop core's one tuple per sub-window scan.
func TestHashJoinIsIngestBound(t *testing.T) {
	const (
		cores  = 4
		window = 1024 // nested-loop: 256-cycle scans
	)
	r := make([]stream.Tuple, window)
	s := make([]stream.Tuple, window)
	for i := range r {
		r[i] = stream.Tuple{Key: 0xF0000000 + uint32(i)}
		s[i] = stream.Tuple{Key: 0xE0000000 + uint32(i)}
	}
	measure := func(algo JoinAlgorithm) float64 {
		d, err := BuildUniFlow(UniFlowConfig{
			NumCores:   cores,
			WindowSize: window,
			Algorithm:  algo,
		}, false, saturatedGenerator())
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Preload(r, s); err != nil {
			t.Fatal(err)
		}
		return d.MeasureThroughput(5_000, 50_000).TuplesPerCycle()
	}
	nested := measure(NestedLoop)
	hashed := measure(HashJoin)
	if hashed < 0.8 {
		t.Errorf("hash join throughput = %.3f tuples/cycle, want ≈1 (ingest-bound)", hashed)
	}
	wantNested := 1.0 / float64(window/cores)
	if nested > wantNested*1.2 {
		t.Errorf("nested-loop throughput = %.5f, want ≈%.5f (scan-bound)", nested, wantNested)
	}
	if hashed/nested < 50 {
		t.Errorf("hash/nested speedup = %.0f×, want large at window %d", hashed/nested, window)
	}
}

// TestHashJoinExpiryRemovesBucketEntries: expired tuples must not match.
func TestHashJoinExpiryRemovesBucketEntries(t *testing.T) {
	const window = 8
	var inputs []core.Input
	inputs = append(inputs, core.Input{Side: stream.SideS, Tuple: stream.Tuple{Key: 7}})
	for i := 0; i < window+2; i++ { // push key 7 out of the window
		inputs = append(inputs, core.Input{Side: stream.SideS, Tuple: stream.Tuple{Key: 100 + uint32(i)}})
	}
	inputs = append(inputs, core.Input{Side: stream.SideR, Tuple: stream.Tuple{Key: 7}})
	d, err := BuildUniFlow(UniFlowConfig{
		NumCores:   2,
		WindowSize: window,
		Algorithm:  HashJoin,
	}, true, inputsGenerator(inputs))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.RunToQuiescence(100_000); err != nil {
		t.Fatal(err)
	}
	if got := d.Sink().Drained(); got != 0 {
		t.Errorf("expired bucket entry matched: %d results", got)
	}
	// And the oracle agrees there is nothing to find.
	if err := core.VerifyExactlyOnce(window, stream.EquiJoinOnKey(), inputs, d.Sink().Results()); err != nil {
		t.Error(err)
	}
}

// TestHashJoinSkewedKeys: heavy key skew degenerates buckets toward the
// nested-loop scan, but correctness holds.
func TestHashJoinSkewedKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	inputs := randomInputs(rng, 400, 2) // two keys only: giant buckets
	d, err := BuildUniFlow(UniFlowConfig{
		NumCores:   4,
		WindowSize: 32,
		Algorithm:  HashJoin,
	}, true, inputsGenerator(inputs))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.RunToQuiescence(10_000_000); err != nil {
		t.Fatal(err)
	}
	if err := core.VerifyExactlyOnce(32, stream.EquiJoinOnKey(), inputs, d.Sink().Results()); err != nil {
		t.Error(err)
	}
}
