package hwjoin

import (
	"testing"

	"accelstream/internal/hwsim"
	"accelstream/internal/stream"
)

// TestDNodeBroadcastsAtomically: a DNode forwards a flit only when every
// child can accept, and then to all of them at once.
func TestDNodeBroadcastsAtomically(t *testing.T) {
	in := hwsim.NewFIFO[Flit]("in", 2)
	a := hwsim.NewFIFO[Flit]("a", 1)
	c := hwsim.NewFIFO[Flit]("c", 1)
	node := NewDNode("d", in, []*hwsim.FIFO[Flit]{a, c})
	var sim hwsim.Simulator
	sim.Add(node)
	sim.AddState(in, a, c)

	in.Push(TupleFlit(stream.SideR, stream.Tuple{Key: 1}))
	in.Push(TupleFlit(stream.SideR, stream.Tuple{Key: 2}))
	sim.Step() // commit the pushes; node saw an empty FIFO this cycle
	sim.Step() // node forwards flit 1 to both children
	if a.Len() != 1 || c.Len() != 1 {
		t.Fatalf("children lengths %d/%d after broadcast, want 1/1", a.Len(), c.Len())
	}
	// Child c stays full: the node must not forward flit 2 to a alone.
	sim.Step()
	sim.Step()
	if a.Len() != 1 {
		t.Fatalf("DNode forwarded to a non-blocked child while another was full")
	}
	// Drain c; the node may now forward flit 2 atomically.
	c.Pop()
	a.Pop()
	sim.Step()
	sim.Step()
	if a.Len() != 1 || c.Len() != 1 {
		t.Fatalf("children lengths %d/%d after drain, want 1/1", a.Len(), c.Len())
	}
	if got := a.Front().Tuple.Key; got != 2 {
		t.Errorf("second broadcast key = %d, want 2", got)
	}
}

// TestGNodeToggleGrantFairness: with both inputs saturated, a GNode serves
// them strictly alternately — each source pushes once every two cycles.
func TestGNodeToggleGrantFairness(t *testing.T) {
	inA := hwsim.NewFIFO[stream.Result]("inA", 2)
	inB := hwsim.NewFIFO[stream.Result]("inB", 2)
	out := hwsim.NewFIFO[stream.Result]("out", 2)
	node := NewGNode("g", inA, inB, out)

	// Producers that keep their FIFOs full with tagged results, and a
	// consumer recording the merged order.
	feedA := &resultFeeder{out: inA, key: 1}
	feedB := &resultFeeder{out: inB, key: 2}
	drain := &resultDrain{in: out}
	var sim hwsim.Simulator
	sim.Add(feedA, feedB, node, drain)
	sim.AddState(inA, inB, out)
	sim.Run(50)

	if len(drain.got) < 20 {
		t.Fatalf("only %d results merged in 50 cycles, want ≥ 20", len(drain.got))
	}
	for i := 1; i < len(drain.got); i++ {
		if drain.got[i].R.Key == drain.got[i-1].R.Key {
			t.Fatalf("toggle grant violated: consecutive results from source %d at %d", drain.got[i].R.Key, i)
		}
	}
}

// TestGNodePassThroughSingleInput: a GNode with one input forwards every
// cycle.
func TestGNodePassThroughSingleInput(t *testing.T) {
	in := hwsim.NewFIFO[stream.Result]("in", 2)
	out := hwsim.NewFIFO[stream.Result]("out", 2)
	node := NewGNode("g", in, nil, out)
	feed := &resultFeeder{out: in, key: 9}
	drain := &resultDrain{in: out}
	var sim hwsim.Simulator
	sim.Add(feed, node, drain)
	sim.AddState(in, out)
	sim.Run(40)
	if len(drain.got) < 35 {
		t.Errorf("pass-through merged %d results in 40 cycles, want ≈38 (one per cycle)", len(drain.got))
	}
}

// TestCollectorRoundRobinLatency: the lightweight collector visits one core
// per cycle, so a lone result waits for the poll pointer — up to N cycles.
func TestCollectorRoundRobinLatency(t *testing.T) {
	const n = 8
	ins := make([]*hwsim.FIFO[stream.Result], n)
	for i := range ins {
		ins[i] = hwsim.NewFIFO[stream.Result]("in", 2)
	}
	out := hwsim.NewFIFO[stream.Result]("out", 2)
	col := NewCollector(ins, out)
	drain := &resultDrain{in: out}
	var sim hwsim.Simulator
	sim.Add(col, drain)
	for _, f := range ins {
		sim.AddState(f)
	}
	sim.AddState(out)

	// Put one result into the LAST core's FIFO just after the pointer
	// passed it: worst case ≈ n cycles to be collected.
	sim.Run(1) // pointer now at index 1
	ins[0].Push(stream.Result{R: stream.Tuple{Key: 5}})
	cycles, err := sim.RunUntil(100, func() bool { return len(drain.got) == 1 })
	if err != nil {
		t.Fatal(err)
	}
	if cycles < n-1 || cycles > n+3 {
		t.Errorf("worst-case collection took %d cycles, want ≈%d (full round-robin sweep)", cycles, n)
	}
}

// resultFeeder keeps a FIFO full with results tagged by key.
type resultFeeder struct {
	out *hwsim.FIFO[stream.Result]
	key uint32
	n   uint64
}

func (f *resultFeeder) Name() string { return "feeder" }
func (f *resultFeeder) Eval() {
	if f.out.CanPush() {
		f.out.Push(stream.Result{R: stream.Tuple{Key: f.key, Seq: f.n}})
		f.n++
	}
}
func (f *resultFeeder) Commit() {}

// resultDrain consumes a FIFO and records what it saw.
type resultDrain struct {
	in  *hwsim.FIFO[stream.Result]
	got []stream.Result
}

func (d *resultDrain) Name() string { return "drain" }
func (d *resultDrain) Eval() {
	if d.in.CanPop() {
		d.got = append(d.got, d.in.Pop())
	}
}
func (d *resultDrain) Commit() {}

// TestBroadcasterStallsOnAnyFullFetcher mirrors the DNode atomicity rule
// for the lightweight network.
func TestBroadcasterStallsOnAnyFullFetcher(t *testing.T) {
	in := hwsim.NewFIFO[Flit]("in", 2)
	f1 := hwsim.NewFIFO[Flit]("f1", 1)
	f2 := hwsim.NewFIFO[Flit]("f2", 1)
	bc := NewBroadcaster(in, []*hwsim.FIFO[Flit]{f1, f2})
	var sim hwsim.Simulator
	sim.Add(bc)
	sim.AddState(in, f1, f2)

	in.Push(TupleFlit(stream.SideS, stream.Tuple{Key: 1}))
	sim.Step()
	sim.Step()
	if f1.Len() != 1 || f2.Len() != 1 {
		t.Fatalf("broadcast did not reach both fetchers: %d/%d", f1.Len(), f2.Len())
	}
	in.Push(TupleFlit(stream.SideS, stream.Tuple{Key: 2}))
	sim.Step()
	sim.Step()
	if f1.Len() != 1 || f2.Len() != 1 {
		t.Fatal("broadcast proceeded while a fetcher was full")
	}
}
