package hwjoin

import (
	"fmt"

	"accelstream/internal/core"
	"accelstream/internal/hwsim"
	"accelstream/internal/stream"
)

// BiFlowConfig parameterizes a bi-flow (handshake join / OP-Chain) hardware
// design.
type BiFlowConfig struct {
	// NumCores is the length of the join-core chain.
	NumCores int
	// WindowSize is the total per-stream window; it must divide evenly
	// across the cores.
	WindowSize int
	// Condition is the join condition (programmed at synthesis time; the
	// bi-flow baseline has no online operator programming).
	Condition stream.JoinCondition
	// Network selects the result gathering network. Defaults to Lightweight
	// (the configuration used for the paper's Virtex-5 comparison).
	Network NetworkKind
	// FIFODepth is the depth of ingress and result FIFOs. Defaults to 2.
	FIFODepth int
	// DecodeCycles is the per-tuple instruction/header decode overhead of
	// the general OP-Block fabric the chain is built from. Defaults to 2.
	DecodeCycles int
	// FastForward enables the low-latency handshake join variant ([36],
	// Section III): "each tuple of each stream is replicated and forwarded
	// to the next join core before the join computation is carried out".
	// Tuples are stored at their entry core and a replica sweeps the chain
	// scanning every core's opposite segment in a pipeline, so a tuple's
	// full result set completes in ≈N hops + one sub-window scan instead of
	// waiting for ≈W subsequent arrivals to push it through the chain.
	FastForward bool
	// MemStallCycles is the number of cycles one window-buffer read takes
	// through the coordinator-arbitrated shared memory port. The uni-flow
	// core reads its dedicated BRAM once per cycle; the bi-flow core's
	// single port is shared between the two buffer managers, the transfer
	// circuitry, and the processing unit. Defaults to 7 (calibrated so the
	// uni-flow/bi-flow throughput gap lands at the paper's reported
	// "nearly an order of magnitude", Figure 14b; see EXPERIMENTS.md).
	MemStallCycles int
}

func (cfg *BiFlowConfig) applyDefaults() {
	if cfg.FIFODepth == 0 {
		cfg.FIFODepth = 2
	}
	if cfg.Network == 0 {
		cfg.Network = Lightweight
	}
	if cfg.DecodeCycles == 0 {
		cfg.DecodeCycles = 2
	}
	if cfg.MemStallCycles == 0 {
		cfg.MemStallCycles = 7
	}
	if cfg.Condition == (stream.JoinCondition{}) {
		cfg.Condition = stream.EquiJoinOnKey()
	}
}

// Validate checks the configuration.
func (cfg BiFlowConfig) Validate() error {
	if cfg.NumCores <= 0 {
		return fmt.Errorf("hwjoin: bi-flow NumCores must be positive, got %d", cfg.NumCores)
	}
	p := core.Partition{NumCores: cfg.NumCores, Position: 0}
	if _, err := p.SubWindowSize(cfg.WindowSize); err != nil {
		return err
	}
	if err := cfg.Condition.Validate(); err != nil {
		return err
	}
	if cfg.DecodeCycles < 1 {
		return fmt.Errorf("hwjoin: bi-flow DecodeCycles must be at least 1, got %d", cfg.DecodeCycles)
	}
	if cfg.MemStallCycles < 1 {
		return fmt.Errorf("hwjoin: bi-flow MemStallCycles must be at least 1, got %d", cfg.MemStallCycles)
	}
	return nil
}

// BiFlowDesign is a built bi-flow parallel stream join: a splitter feeding
// the two chain ends, the linear chain of join cores connected by
// coordinated links, expiry reapers at both ends, and a result gathering
// network (Figure 8a).
type BiFlowDesign struct {
	cfg   BiFlowConfig
	sim   *hwsim.Simulator
	src   *Source
	sink  *Sink
	cores []*BiCore
	gath  *gatheringNet

	ingress  *hwsim.FIFO[Flit]
	rIngress *hwsim.FIFO[Flit]
	sIngress *hwsim.FIFO[Flit]
	reaperR  *reaper
	reaperS  *reaper
	repFIFOs []*hwsim.FIFO[stream.Tuple]

	subWindow int
}

// BuildBiFlow constructs the design around the given input generator.
func BuildBiFlow(cfg BiFlowConfig, keepResults bool, next func() (Flit, bool)) (*BiFlowDesign, error) {
	cfg.applyDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	subWindow := cfg.WindowSize / cfg.NumCores

	d := &BiFlowDesign{cfg: cfg, sim: &hwsim.Simulator{}, subWindow: subWindow}

	for i := 0; i < cfg.NumCores; i++ {
		c := NewBiCore(i, subWindow, cfg.FIFODepth, cfg.DecodeCycles, cfg.MemStallCycles, cfg.Condition)
		c.fastForward = cfg.FastForward
		d.cores = append(d.cores, c)
	}

	// Ingress plumbing: source → splitter → chain-end FIFOs.
	d.ingress = hwsim.NewFIFO[Flit]("bi.ingress", cfg.FIFODepth)
	d.rIngress = hwsim.NewFIFO[Flit]("bi.rIngress", cfg.FIFODepth)
	d.sIngress = hwsim.NewFIFO[Flit]("bi.sIngress", cfg.FIFODepth)
	split := &splitter{in: d.ingress, outR: d.rIngress, outS: d.sIngress}

	// Links: N+1 of them; link i sits left of core i. The outermost links
	// carry ingress inward and expiry outward.
	links := make([]*biLink, cfg.NumCores+1)
	for i := range links {
		links[i] = &biLink{name: fmt.Sprintf("link%d", i)}
		// Interior links of a fast-forward chain carry the replica sweeps.
		if cfg.FastForward && i > 0 && i < cfg.NumCores {
			links[i].repR = hwsim.NewFIFO[stream.Tuple](fmt.Sprintf("link%d.repR", i), cfg.FIFODepth)
			links[i].repS = hwsim.NewFIFO[stream.Tuple](fmt.Sprintf("link%d.repS", i), cfg.FIFODepth)
			d.repFIFOs = append(d.repFIFOs, links[i].repR, links[i].repS)
		}
	}
	for i, c := range d.cores {
		c.left = links[i]
		c.right = links[i+1]
	}
	// S tuples enter at the far left and R tuples at the far right.
	links[0].inS = ingressPort{fifo: d.sIngress}
	links[cfg.NumCores].inR = ingressPort{fifo: d.rIngress}
	d.cores[0].entryTaps = append(d.cores[0].entryTaps, entryTap{fifo: d.sIngress, side: stream.SideS})
	last := d.cores[cfg.NumCores-1]
	last.entryTaps = append(last.entryTaps, entryTap{fifo: d.rIngress, side: stream.SideR})
	// Interior directions are fed by the neighbouring cores' segments.
	for i, c := range d.cores {
		links[i+1].inS = segmentPort{core: c, side: stream.SideS} // S leaves rightward
		links[i].inR = segmentPort{core: c, side: stream.SideR}   // R leaves leftward
	}
	// Expiry: R falls off the far left, S off the far right.
	d.reaperR = &reaper{name: "reaperR", link: links[0], side: stream.SideR}
	d.reaperS = &reaper{name: "reaperS", link: links[cfg.NumCores], side: stream.SideS}

	results := make([]*hwsim.FIFO[stream.Result], cfg.NumCores)
	for i, c := range d.cores {
		results[i] = c.Results()
	}
	gath, err := buildGathering(cfg.Network, results, cfg.FIFODepth)
	if err != nil {
		return nil, err
	}
	d.gath = gath

	d.src = NewSource(d.ingress, d.sim.Cycle, next)
	d.sink = NewSink(gath.egress, d.sim.Cycle, keepResults)

	d.sim.Add(d.src, split)
	for _, c := range d.cores {
		d.sim.Add(c)
	}
	d.sim.Add(d.reaperR, d.reaperS)
	d.sim.Add(gath.comps...)
	d.sim.Add(d.sink)
	d.sim.AddState(d.ingress, d.rIngress, d.sIngress)
	for _, f := range d.repFIFOs {
		d.sim.AddState(f)
	}
	for _, c := range d.cores {
		d.sim.AddState(c.Results())
	}
	d.sim.AddState(gath.fifos...)
	return d, nil
}

// Sim exposes the underlying simulator.
func (d *BiFlowDesign) Sim() *hwsim.Simulator { return d.sim }

// Source exposes the test-bench source.
func (d *BiFlowDesign) Source() *Source { return d.src }

// Sink exposes the test-bench sink.
func (d *BiFlowDesign) Sink() *Sink { return d.sink }

// Cores exposes the join cores.
func (d *BiFlowDesign) Cores() []*BiCore { return d.cores }

// SubWindowSize returns the nominal per-core per-stream segment size.
func (d *BiFlowDesign) SubWindowSize() int { return d.subWindow }

// Expired returns how many tuples have fallen off each end of the chain.
func (d *BiFlowDesign) Expired() (r, s uint64) { return d.reaperR.done, d.reaperS.done }

// Preload fills the chain's segments as if the tuples had flowed through:
// for S, the newest tuples sit in core 0 (the entry end) and the oldest in
// core NumCores-1; for R the arrangement mirrors. Tuples are in arrival
// order (index 0 oldest) and at most WindowSize per stream are kept.
func (d *BiFlowDesign) Preload(r, s []stream.Tuple) error {
	n := d.cfg.NumCores
	w := d.subWindow
	if len(r) > d.cfg.WindowSize {
		r = r[len(r)-d.cfg.WindowSize:]
	}
	if len(s) > d.cfg.WindowSize {
		s = s[len(s)-d.cfg.WindowSize:]
	}
	// Walk from the oldest end of the chain toward the entry end.
	for p := 0; p < n; p++ {
		// For S: core (n-1-p) holds the p-th oldest chunk.
		lo := p * w
		hi := lo + w
		if lo < len(s) {
			if hi > len(s) {
				hi = len(s)
			}
			if err := d.cores[n-1-p].Preload(stream.SideS, s[lo:hi]); err != nil {
				return err
			}
		}
		// For R: core p holds the p-th oldest chunk (entry at the right).
		if lo < len(r) {
			hiR := hi
			if hiR > len(r) {
				hiR = len(r)
			}
			if err := d.cores[p].Preload(stream.SideR, r[lo:hiR]); err != nil {
				return err
			}
		}
	}
	return nil
}

// Quiescent reports whether no work is in flight anywhere.
func (d *BiFlowDesign) Quiescent() bool {
	if !d.src.Exhausted() {
		return false
	}
	if d.ingress.Len() > 0 || d.rIngress.Len() > 0 || d.sIngress.Len() > 0 {
		return false
	}
	for _, c := range d.cores {
		if !c.Idle() || c.Results().Len() > 0 {
			return false
		}
	}
	for _, f := range d.repFIFOs {
		if f.Len() > 0 {
			return false
		}
	}
	for _, f := range d.gath.fifos {
		if rf, ok := f.(*hwsim.FIFO[stream.Result]); ok && rf.Len() > 0 {
			return false
		}
	}
	return true
}

// RunToQuiescence steps the simulation until Quiescent, with a cycle budget.
func (d *BiFlowDesign) RunToQuiescence(maxCycles uint64) (uint64, error) {
	return d.sim.RunUntil(maxCycles, d.Quiescent)
}

// MeasureThroughput drives the design for warmup cycles, then measures
// injected input tuples over measure cycles.
func (d *BiFlowDesign) MeasureThroughput(warmup, measure uint64) ThroughputMeasurement {
	d.sim.Run(warmup)
	startIn := d.src.Injected()
	startOut := d.sink.Drained()
	d.sim.Run(measure)
	return ThroughputMeasurement{
		WarmupCycles:   warmup,
		MeasureCycles:  measure,
		TuplesInjected: d.src.Injected() - startIn,
		ResultsDrained: d.sink.Drained() - startOut,
	}
}
