package hwjoin

import (
	"fmt"
	"math/rand"
	"testing"

	"accelstream/internal/core"
	"accelstream/internal/stream"
)

// TestFastForwardOneDirectionMatchesOracle: with a static preloaded S
// window, every R probe's replica sweeps the whole chain, so results equal
// the oracle exactly — without any flush traffic (unlike the classic
// chain, which needs subsequent arrivals to push probes along).
func TestFastForwardOneDirectionMatchesOracle(t *testing.T) {
	const (
		cores  = 4
		window = 32
		probes = 24
	)
	rng := rand.New(rand.NewSource(5))
	s := make([]stream.Tuple, window)
	for i := range s {
		s[i] = stream.Tuple{Key: uint32(rng.Intn(8)), Seq: uint64(i)}
	}
	var inputs []core.Input
	for i := 0; i < probes; i++ {
		inputs = append(inputs, core.Input{Side: stream.SideR, Tuple: stream.Tuple{Key: uint32(rng.Intn(8))}})
	}
	d, err := BuildBiFlow(BiFlowConfig{NumCores: cores, WindowSize: window, FastForward: true}, true, inputsGenerator(inputs))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Preload(nil, s); err != nil {
		t.Fatal(err)
	}
	if _, err := d.RunToQuiescence(10_000_000); err != nil {
		t.Fatal(err)
	}

	oracle, err := core.NewOracle(window+probes, stream.EquiJoinOnKey())
	if err != nil {
		t.Fatal(err)
	}
	for _, tu := range s {
		if _, err := oracle.Push(stream.SideS, stream.Tuple{Key: tu.Key}); err != nil {
			t.Fatal(err)
		}
	}
	var want []stream.Result
	for _, in := range inputs {
		rs, err := oracle.Push(in.Side, in.Tuple)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, rs...)
	}
	diffs := core.NewResultSet(want).Diff(core.NewResultSet(d.Sink().Results()))
	if len(diffs) != 0 {
		t.Errorf("fast-forward one-direction mismatch (%d diffs): %v", len(diffs), diffs[:min(4, len(diffs))])
	}
	if len(want) == 0 {
		t.Error("vacuous test")
	}
}

// TestFastForwardExactlyOnceUnderConcurrency: the global-tag rule keeps
// pairings exactly-once with both streams flowing; every in-window pair
// appears and none twice.
func TestFastForwardExactlyOnceUnderConcurrency(t *testing.T) {
	const (
		window = 64
		nReal  = 48
	)
	for _, cores := range []int{1, 2, 4, 8} {
		cores := cores
		t.Run(fmt.Sprintf("cores=%d", cores), func(t *testing.T) {
			rng := rand.New(rand.NewSource(9))
			var inputs []core.Input
			for i := 0; i < 2*nReal; i++ {
				side := stream.SideR
				if i%2 == 1 {
					side = stream.SideS
				}
				inputs = append(inputs, core.Input{Side: side, Tuple: stream.Tuple{Key: uint32(rng.Intn(6))}})
			}
			d, err := BuildBiFlow(BiFlowConfig{NumCores: cores, WindowSize: window, FastForward: true}, true, inputsGenerator(inputs))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := d.RunToQuiescence(50_000_000); err != nil {
				t.Fatal(err)
			}
			// All arrivals fit in one window, so the oracle's multiset must
			// appear exactly — the strongest form of the invariant.
			if err := core.VerifyExactlyOnce(window, stream.EquiJoinOnKey(), inputs, d.Sink().Results()); err != nil {
				t.Error(err)
			}
			if d.Sink().Drained() == 0 {
				t.Error("vacuous test")
			}
		})
	}
}

// TestFastForwardLatencyBeatsClassic is the Section III claim: a probe's
// full result set completes in ≈N hops + one sub-window scan on the
// low-latency chain, while the classic chain leaves most of the window
// unmet until later arrivals push the probe along.
func TestFastForwardLatencyBeatsClassic(t *testing.T) {
	const (
		cores  = 8
		window = 256 // sub-window 32
	)
	s := make([]stream.Tuple, window)
	for i := range s {
		s[i] = stream.Tuple{Key: 0xE0000000 + uint32(i), Seq: uint64(i)}
	}
	// One match per chain segment: the probe must visit every core to
	// complete.
	matches := 0
	for i := 0; i < window; i += window / cores {
		s[i].Key = 42
		matches++
	}
	run := func(ff bool) (results uint64, cycles uint64) {
		probe := true
		gen := func() (Flit, bool) {
			if !probe {
				return Flit{}, false
			}
			probe = false
			return TupleFlit(stream.SideR, stream.Tuple{Key: 42}), true
		}
		d, err := BuildBiFlow(BiFlowConfig{NumCores: cores, WindowSize: window, FastForward: ff}, true, gen)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Preload(nil, s); err != nil {
			t.Fatal(err)
		}
		cycles, err = d.RunToQuiescence(10_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return d.Sink().Drained(), cycles
	}
	classicResults, _ := run(false)
	ffResults, ffCycles := run(true)

	if ffResults != uint64(matches) {
		t.Errorf("fast-forward produced %d results, want %d (full window met)", ffResults, matches)
	}
	if classicResults >= ffResults {
		t.Errorf("classic chain produced %d results without follow-up traffic; should be < %d (probe stuck at entry core)", classicResults, ffResults)
	}
	// Completion bound: N·(hop+store) + decode + one sub-window scan at
	// memStall cycles per read, plus emits and collection.
	sub := window / cores
	stall := 7
	bound := uint64(cores*6 + 2 + sub*stall + matches*4 + 64)
	if ffCycles > bound {
		t.Errorf("fast-forward completion took %d cycles, want ≤ %d (N hops + one scan)", ffCycles, bound)
	}
}

// TestFastForwardSustainedLoad: liveness and window expiry under saturation.
func TestFastForwardSustainedLoad(t *testing.T) {
	d, err := BuildBiFlow(BiFlowConfig{NumCores: 4, WindowSize: 64, FastForward: true}, false, saturatedGenerator())
	if err != nil {
		t.Fatal(err)
	}
	before := d.Source().Injected()
	d.Sim().Run(60_000)
	mid := d.Source().Injected()
	d.Sim().Run(60_000)
	after := d.Source().Injected()
	if mid == before || after == mid {
		t.Fatalf("no injection progress: %d → %d → %d", before, mid, after)
	}
	expR, expS := d.Expired()
	if expR == 0 || expS == 0 {
		t.Errorf("no expiry under sustained load: R=%d S=%d", expR, expS)
	}
}

// TestFastForwardNoDuplicateProperty mirrors the classic chain's property
// test under randomized configurations.
func TestFastForwardNoDuplicateProperty(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		rng := rand.New(rand.NewSource(seed))
		cores := 1 << (rng.Intn(3))                // 1..4
		window := cores * (1 << (rng.Intn(3) + 2)) // sub-window 4..16
		inputs := randomInputs(rng, 150, rng.Intn(8)+2)
		d, err := BuildBiFlow(BiFlowConfig{NumCores: cores, WindowSize: window, FastForward: true}, true, inputsGenerator(inputs))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.RunToQuiescence(50_000_000); err != nil {
			t.Fatalf("seed %d cores=%d window=%d: %v", seed, cores, window, err)
		}
		seen := map[uint64]bool{}
		for _, r := range d.Sink().Results() {
			if r.R.Key != r.S.Key {
				t.Fatalf("seed %d: condition violation %v", seed, r)
			}
			if seen[r.PairID()] {
				t.Fatalf("seed %d: duplicate pair %v", seed, r)
			}
			seen[r.PairID()] = true
		}
	}
}
