package hwjoin

import (
	"fmt"

	"accelstream/internal/hwsim"
)

// NetworkKind selects between the two distribution / result-gathering
// network variants the paper proposes (Section IV).
type NetworkKind uint8

// The two network designs.
const (
	// Lightweight distributes to all join cores at once without extra
	// components; preferable for small designs but its broadcast fanout
	// degrades the achievable clock frequency as the design scales.
	Lightweight NetworkKind = iota + 1
	// Scalable uses a pipelined tree of DNodes (distribution) and GNodes
	// (gathering); it consumes more resources and adds log-many cycles of
	// latency but keeps the clock frequency flat as cores are added.
	Scalable
)

// String implements fmt.Stringer.
func (n NetworkKind) String() string {
	switch n {
	case Lightweight:
		return "lightweight"
	case Scalable:
		return "scalable"
	default:
		return fmt.Sprintf("network(%d)", uint8(n))
	}
}

// Broadcaster is the lightweight distribution network: a single stage that
// pops the ingress and pushes the flit to every join core's fetcher at once.
// The broadcast only proceeds when every fetcher can accept, which models
// the single shared bus: one stalled core stalls the broadcast.
type Broadcaster struct {
	in   *hwsim.FIFO[Flit]
	outs []*hwsim.FIFO[Flit]
}

// NewBroadcaster wires ingress in to every core fetcher in outs.
func NewBroadcaster(in *hwsim.FIFO[Flit], outs []*hwsim.FIFO[Flit]) *Broadcaster {
	return &Broadcaster{in: in, outs: outs}
}

// Name implements hwsim.Component.
func (b *Broadcaster) Name() string { return "broadcast" }

// Eval implements hwsim.Component.
func (b *Broadcaster) Eval() {
	if !b.in.CanPop() {
		return
	}
	for _, o := range b.outs {
		if !o.CanPush() {
			return
		}
	}
	f := b.in.Pop()
	for _, o := range b.outs {
		o.Push(f)
	}
}

// Commit implements hwsim.Component.
func (b *Broadcaster) Commit() {}

// DNode is one node of the scalable distribution network: it receives a
// tuple on its input port and broadcasts it to all its output ports, one
// stored tuple per clock cycle, provided the next stage is not full
// (Section IV). Cascading DNodes with a fixed fan-out builds the pipelined
// distribution tree of Figure 9.
type DNode struct {
	name string
	in   *hwsim.FIFO[Flit]
	outs []*hwsim.FIFO[Flit]
}

// NewDNode builds a distribution node forwarding from in to outs.
func NewDNode(name string, in *hwsim.FIFO[Flit], outs []*hwsim.FIFO[Flit]) *DNode {
	return &DNode{name: name, in: in, outs: outs}
}

// Name implements hwsim.Component.
func (d *DNode) Name() string { return d.name }

// Eval implements hwsim.Component.
func (d *DNode) Eval() {
	if !d.in.CanPop() {
		return
	}
	for _, o := range d.outs {
		if !o.CanPush() {
			return
		}
	}
	f := d.in.Pop()
	for _, o := range d.outs {
		o.Push(f)
	}
}

// Commit implements hwsim.Component.
func (d *DNode) Commit() {}

// distributionNet is the built distribution side of a design.
type distributionNet struct {
	ingress *hwsim.FIFO[Flit]
	comps   []hwsim.Component
	fifos   []hwsim.Committer
	nodes   int // DNode count (0 for lightweight)
	stages  int // pipeline stages between ingress and fetchers
}

// buildDistribution wires ingress-to-fetchers for the requested network
// kind. fetchers are the join cores' input FIFOs. fanout is the DNode
// fan-out for the scalable variant (the paper uses 1→2 and suggests 1→4).
func buildDistribution(kind NetworkKind, fanout int, fetchers []*hwsim.FIFO[Flit], fifoDepth int) (*distributionNet, error) {
	if len(fetchers) == 0 {
		return nil, fmt.Errorf("hwjoin: distribution network needs at least one join core")
	}
	switch kind {
	case Lightweight:
		in := hwsim.NewFIFO[Flit]("dist.in", fifoDepth)
		b := NewBroadcaster(in, fetchers)
		return &distributionNet{
			ingress: in,
			comps:   []hwsim.Component{b},
			fifos:   []hwsim.Committer{in},
			stages:  1,
		}, nil
	case Scalable:
		if fanout < 2 {
			return nil, fmt.Errorf("hwjoin: scalable distribution fan-out must be at least 2, got %d", fanout)
		}
		net := &distributionNet{}
		// Build the tree bottom-up: start from the fetcher FIFOs and group
		// them under DNodes level by level until a single input remains.
		level := fetchers
		for len(level) > 1 {
			var next []*hwsim.FIFO[Flit]
			for i := 0; i < len(level); i += fanout {
				end := i + fanout
				if end > len(level) {
					end = len(level)
				}
				in := hwsim.NewFIFO[Flit](fmt.Sprintf("dnode%d.in", net.nodes), fifoDepth)
				node := NewDNode(fmt.Sprintf("dnode%d", net.nodes), in, level[i:end])
				net.nodes++
				net.comps = append(net.comps, node)
				net.fifos = append(net.fifos, in)
				next = append(next, in)
			}
			level = next
			net.stages++
		}
		net.ingress = level[0]
		if net.stages == 0 {
			// Single core: give it a pass-through stage so the design always
			// has a distinct ingress FIFO.
			in := hwsim.NewFIFO[Flit]("dnode0.in", fifoDepth)
			node := NewDNode("dnode0", in, fetchers)
			net.nodes = 1
			net.stages = 1
			net.comps = append(net.comps, node)
			net.fifos = append(net.fifos, in)
			net.ingress = in
		}
		return net, nil
	default:
		return nil, fmt.Errorf("hwjoin: unknown network kind %d", kind)
	}
}
