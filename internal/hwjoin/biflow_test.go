package hwjoin

import (
	"fmt"
	"math/rand"
	"testing"

	"accelstream/internal/core"
	"accelstream/internal/stream"
)

// flushKeyR and flushKeyS never match anything (nor each other) under the
// equi-join used in these tests.
const (
	flushKeyR = 0xFFFFFFFE
	flushKeyS = 0xFFFFFFFF
)

// withFlush appends enough non-matching tuples on both streams to push every
// real tuple entirely through the chain (and out of the window).
func withFlush(inputs []core.Input, flushPerSide int) []core.Input {
	out := append([]core.Input(nil), inputs...)
	for i := 0; i < flushPerSide; i++ {
		out = append(out,
			core.Input{Side: stream.SideR, Tuple: stream.Tuple{Key: flushKeyR}},
			core.Input{Side: stream.SideS, Tuple: stream.Tuple{Key: flushKeyS}},
		)
	}
	return out
}

func TestBiFlowConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		cfg     BiFlowConfig
		wantErr bool
	}{
		{"ok", BiFlowConfig{NumCores: 4, WindowSize: 64}, false},
		{"zero cores", BiFlowConfig{NumCores: 0, WindowSize: 64}, true},
		{"indivisible", BiFlowConfig{NumCores: 3, WindowSize: 64}, true},
		{"bad decode", BiFlowConfig{NumCores: 4, WindowSize: 64, DecodeCycles: -1}, true},
		{"bad stall", BiFlowConfig{NumCores: 4, WindowSize: 64, MemStallCycles: -2}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := BuildBiFlow(tt.cfg, false, func() (Flit, bool) { return Flit{}, false })
			if (err != nil) != tt.wantErr {
				t.Errorf("BuildBiFlow() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

// TestBiFlowOneDirectionMatchesOracle: with a static preloaded S window and
// only R tuples flowing (plus flush traffic to push them through the whole
// chain), handshake-join semantics coincide with strict sliding-window
// semantics, so the result multiset must equal the oracle's exactly.
func TestBiFlowOneDirectionMatchesOracle(t *testing.T) {
	const (
		cores  = 4
		window = 32
		probes = 24
	)
	rng := rand.New(rand.NewSource(5))

	s := make([]stream.Tuple, window)
	for i := range s {
		s[i] = stream.Tuple{Key: uint32(rng.Intn(8)), Val: uint32(i), Seq: uint64(i)}
	}
	var inputs []core.Input
	for i := 0; i < probes; i++ {
		inputs = append(inputs, core.Input{Side: stream.SideR, Tuple: stream.Tuple{Key: uint32(rng.Intn(8)), Val: 100 + uint32(i)}})
	}
	// Flush with R-only traffic so the S window never changes.
	flush := window + probes + 8
	for i := 0; i < flush; i++ {
		inputs = append(inputs, core.Input{Side: stream.SideR, Tuple: stream.Tuple{Key: flushKeyR}})
	}

	d, err := BuildBiFlow(BiFlowConfig{NumCores: cores, WindowSize: window}, true, inputsGenerator(inputs))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Preload(nil, s); err != nil {
		t.Fatal(err)
	}
	if _, err := d.RunToQuiescence(10_000_000); err != nil {
		t.Fatal(err)
	}

	// Oracle over the same logical sequence: S first, then all R traffic.
	// The oracle window must be big enough that S tuples never expire (they
	// would not in the bi-flow chain either, since no S tuples arrive).
	oracle, err := core.NewOracle(window+flush+probes, stream.EquiJoinOnKey())
	if err != nil {
		t.Fatal(err)
	}
	for _, tu := range s {
		if _, err := oracle.Push(stream.SideS, stream.Tuple{Key: tu.Key, Val: tu.Val}); err != nil {
			t.Fatal(err)
		}
	}
	var want []stream.Result
	for _, in := range inputs {
		rs, err := oracle.Push(in.Side, in.Tuple)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, rs...)
	}
	diffs := core.NewResultSet(want).Diff(core.NewResultSet(d.Sink().Results()))
	if len(diffs) != 0 {
		t.Errorf("bi-flow one-direction results differ from oracle (%d diffs): %v", len(diffs), diffs[:min(4, len(diffs))])
	}
	if len(want) == 0 {
		t.Error("oracle produced no results; test is vacuous")
	}
}

// TestBiFlowExactlyOnceUnderConcurrency: with both streams flowing, the
// coordinated link locks must still guarantee that no pair is ever compared
// twice, and that every pair comfortably inside the window is compared at
// least once by the time the chain has been flushed.
func TestBiFlowExactlyOnceUnderConcurrency(t *testing.T) {
	const (
		cores  = 4
		window = 64
		nReal  = 48 // interleaved R/S arrivals per stream
	)
	rng := rand.New(rand.NewSource(9))
	var inputs []core.Input
	for i := 0; i < 2*nReal; i++ {
		side := stream.SideR
		if i%2 == 1 {
			side = stream.SideS
		}
		inputs = append(inputs, core.Input{Side: side, Tuple: stream.Tuple{Key: uint32(rng.Intn(6)), Val: uint32(i)}})
	}
	all := withFlush(inputs, 2*window+nReal)

	d, err := BuildBiFlow(BiFlowConfig{NumCores: cores, WindowSize: window}, true, inputsGenerator(all))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.RunToQuiescence(50_000_000); err != nil {
		t.Fatal(err)
	}
	results := d.Sink().Results()

	// No duplicates, and every result satisfies the condition.
	seen := map[uint64]bool{}
	for _, r := range results {
		if r.R.Key != r.S.Key {
			t.Fatalf("emitted pair violates equi-join: %v", r)
		}
		if seen[r.PairID()] {
			t.Fatalf("pair emitted twice: %v", r)
		}
		seen[r.PairID()] = true
	}

	// Completeness: all real arrivals fit inside one window (nReal ≤ window),
	// so every matching (r, s) pair among the real tuples must appear.
	missing := 0
	for _, a := range inputs {
		if a.Side != stream.SideR {
			continue
		}
		for _, b := range inputs {
			if b.Side != stream.SideS || a.Tuple.Key != b.Tuple.Key {
				continue
			}
			// Reconstruct per-stream sequence numbers the generator assigned.
			rSeq := perStreamSeq(inputs, a)
			sSeq := perStreamSeq(inputs, b)
			id := rSeq<<32 | sSeq&0xFFFFFFFF
			if !seen[id] {
				missing++
			}
		}
	}
	if missing > 0 {
		t.Errorf("%d matching in-window pairs were never compared", missing)
	}
	if len(results) == 0 {
		t.Error("no results; test is vacuous")
	}
}

// perStreamSeq computes the per-stream arrival index of input `in` within
// the sequence (matching inputsGenerator's numbering).
func perStreamSeq(inputs []core.Input, in core.Input) uint64 {
	var seq uint64
	for i := range inputs {
		if inputs[i] == in {
			return seq
		}
		if inputs[i].Side == in.Side {
			seq++
		}
	}
	return seq
}

// TestBiFlowWindowExpiry: tuples past the window must expire off the chain
// ends and never match.
func TestBiFlowWindowExpiry(t *testing.T) {
	const (
		cores  = 2
		window = 8
	)
	// One S tuple with key 1, then > window S tuples with other keys, then
	// an R probe with key 1: the first S tuple has expired, no match.
	var inputs []core.Input
	inputs = append(inputs, core.Input{Side: stream.SideS, Tuple: stream.Tuple{Key: 1}})
	for i := 0; i < window+4; i++ {
		inputs = append(inputs, core.Input{Side: stream.SideS, Tuple: stream.Tuple{Key: 1000 + uint32(i)}})
	}
	inputs = append(inputs, core.Input{Side: stream.SideR, Tuple: stream.Tuple{Key: 1}})
	all := withFlush(inputs, 3*window)

	d, err := BuildBiFlow(BiFlowConfig{NumCores: cores, WindowSize: window}, true, inputsGenerator(all))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.RunToQuiescence(10_000_000); err != nil {
		t.Fatal(err)
	}
	for _, r := range d.Sink().Results() {
		if r.R.Key == 1 && r.S.Key == 1 {
			t.Errorf("expired S tuple matched: %v", r)
		}
	}
	expR, expS := d.Expired()
	if expR == 0 || expS == 0 {
		t.Errorf("expected expiries on both ends, got R=%d S=%d", expR, expS)
	}
}

// TestBiFlowSlowerThanUniFlow reproduces the architectural comparison behind
// Figure 14b: at identical core count and window size, the bi-flow chain's
// input throughput is several times below uni-flow (the paper reports
// roughly an order of magnitude).
func TestBiFlowSlowerThanUniFlow(t *testing.T) {
	const (
		cores  = 8
		window = 512
	)
	// Uni-flow baseline.
	uni, err := BuildUniFlow(UniFlowConfig{NumCores: cores, WindowSize: window, Network: Lightweight}, false, saturatedGenerator())
	if err != nil {
		t.Fatal(err)
	}
	r := make([]stream.Tuple, window)
	s := make([]stream.Tuple, window)
	for i := range r {
		r[i] = stream.Tuple{Key: 0xF0000000 + uint32(i)}
		s[i] = stream.Tuple{Key: 0xE0000000 + uint32(i)}
	}
	if err := uni.Preload(r, s); err != nil {
		t.Fatal(err)
	}
	uniM := uni.MeasureThroughput(20_000, 100_000)

	bi, err := BuildBiFlow(BiFlowConfig{NumCores: cores, WindowSize: window}, false, saturatedGenerator())
	if err != nil {
		t.Fatal(err)
	}
	if err := bi.Preload(r, s); err != nil {
		t.Fatal(err)
	}
	biM := bi.MeasureThroughput(50_000, 200_000)

	uniTP := uniM.TuplesPerCycle()
	biTP := biM.TuplesPerCycle()
	if biTP <= 0 {
		t.Fatal("bi-flow made no progress (deadlock?)")
	}
	ratio := uniTP / biTP
	t.Logf("uni-flow %.6f t/c, bi-flow %.6f t/c, ratio %.1f×", uniTP, biTP, ratio)
	if ratio < 6 {
		t.Errorf("uni/bi throughput ratio = %.1f, want ≥ 6 (paper reports ≈10×)", ratio)
	}
	if ratio > 20 {
		t.Errorf("uni/bi throughput ratio = %.1f, implausibly high vs the paper's ≈10×", ratio)
	}
}

// TestBiFlowProgressUnderSustainedLoad is a liveness check: a long saturated
// run never deadlocks and keeps accepting input.
func TestBiFlowProgressUnderSustainedLoad(t *testing.T) {
	for _, cores := range []int{1, 2, 4, 8} {
		cores := cores
		t.Run(fmt.Sprintf("cores=%d", cores), func(t *testing.T) {
			d, err := BuildBiFlow(BiFlowConfig{NumCores: cores, WindowSize: 16 * cores}, false, saturatedGenerator())
			if err != nil {
				t.Fatal(err)
			}
			before := d.Source().Injected()
			d.Sim().Run(50_000)
			mid := d.Source().Injected()
			d.Sim().Run(50_000)
			after := d.Source().Injected()
			if mid == before || after == mid {
				t.Fatalf("no injection progress: %d → %d → %d", before, mid, after)
			}
		})
	}
}
