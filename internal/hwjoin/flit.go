// Package hwjoin realizes the paper's two flow-based parallel stream join
// architectures as cycle-level hardware designs on the hwsim kernel
// (Section IV, Figures 8–13):
//
//   - the uni-flow design (SplitJoin in hardware): a distribution network
//     (lightweight broadcast or scalable DNode tree), fully independent join
//     cores built from a Fetcher, a Storage Core, and a Processing Core, and
//     a result gathering network (lightweight round-robin collector or
//     scalable GNode tree with the Toggle Grant mechanism);
//   - the bi-flow design (handshake join / OP-Chain): a linear chain of join
//     cores with per-stream window buffers, buffer managers, and a
//     coordinator unit, where R tuples flow right-to-left and S tuples
//     left-to-right, and neighbour-to-neighbour transfers are serialized by
//     link locks to avoid the in-flight race conditions the paper describes.
//
// Both designs expose input-throughput and latency measurement, and report
// their structural inventory to the synthesis model in internal/synth.
package hwjoin

import (
	"fmt"

	"accelstream/internal/stream"
)

// Flit is one word on the distribution data bus: a 2-bit header plus a
// 64-bit payload (Section IV, Figure 9). Tuple flits carry one stream tuple;
// operator flits carry the two-segment join operator instruction that
// reprograms the cores at runtime without re-synthesis.
type Flit struct {
	Header stream.Header
	Tuple  stream.Tuple
	Op     stream.JoinOperator
}

// TupleFlit wraps a stream tuple into a bus flit.
func TupleFlit(side stream.Side, t stream.Tuple) Flit {
	return Flit{Header: stream.HeaderFor(side), Tuple: t}
}

// OperatorFlit wraps a join operator instruction into a bus flit.
func OperatorFlit(op stream.JoinOperator) Flit {
	return Flit{Header: stream.HeaderOperator, Op: op}
}

// String implements fmt.Stringer.
func (f Flit) String() string {
	switch f.Header {
	case stream.HeaderOperator:
		return fmt.Sprintf("op{cores=%d cond=%s}", f.Op.NumCores, f.Op.Condition)
	case stream.HeaderTupleR, stream.HeaderTupleS:
		return fmt.Sprintf("%s%s", f.Header.Side(), f.Tuple)
	default:
		return "idle"
	}
}
