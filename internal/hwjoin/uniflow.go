package hwjoin

import (
	"fmt"

	"accelstream/internal/core"
	"accelstream/internal/hwsim"
	"accelstream/internal/stream"
)

// UniFlowConfig parameterizes a uni-flow (SplitJoin) hardware design.
type UniFlowConfig struct {
	// NumCores is the number of join cores.
	NumCores int
	// WindowSize is the total per-stream sliding window size; it must
	// divide evenly across the cores.
	WindowSize int
	// Network selects lightweight or scalable distribution and gathering.
	Network NetworkKind
	// Fanout is the DNode fan-out of the scalable distribution network.
	// Defaults to 2 (the paper's 1→2 configuration).
	Fanout int
	// Condition is the join condition programmed at build time.
	Condition stream.JoinCondition
	// FIFODepth is the depth of every pipeline FIFO. Defaults to 2 (skid
	// buffer: sustains one transfer per cycle).
	FIFODepth int
	// Algorithm selects the join cores' algorithm. Defaults to NestedLoop
	// (the paper's measured configuration); HashJoin requires the equi-join
	// on key.
	Algorithm JoinAlgorithm
}

func (cfg *UniFlowConfig) applyDefaults() {
	if cfg.Fanout == 0 {
		cfg.Fanout = 2
	}
	if cfg.FIFODepth == 0 {
		cfg.FIFODepth = 2
	}
	if cfg.Network == 0 {
		cfg.Network = Scalable
	}
	if cfg.Condition == (stream.JoinCondition{}) {
		cfg.Condition = stream.EquiJoinOnKey()
	}
	if cfg.Algorithm == 0 {
		cfg.Algorithm = NestedLoop
	}
}

// Validate checks the configuration.
func (cfg UniFlowConfig) Validate() error {
	if cfg.NumCores <= 0 {
		return fmt.Errorf("hwjoin: uni-flow NumCores must be positive, got %d", cfg.NumCores)
	}
	if cfg.Algorithm == HashJoin && cfg.Condition != stream.EquiJoinOnKey() {
		return fmt.Errorf("hwjoin: hash-join cores support only the equi-join on key, got %s", cfg.Condition)
	}
	p := core.Partition{NumCores: cfg.NumCores, Position: 0}
	if _, err := p.SubWindowSize(cfg.WindowSize); err != nil {
		return err
	}
	if err := cfg.Condition.Validate(); err != nil {
		return err
	}
	return nil
}

// UniFlowDesign is a built uni-flow parallel stream join: distribution
// network → join cores → result gathering network (Figure 9), plus a
// test-bench source and sink.
type UniFlowDesign struct {
	cfg   UniFlowConfig
	sim   *hwsim.Simulator
	src   *Source
	sink  *Sink
	cores []*UniCore
	dist  *distributionNet
	gath  *gatheringNet

	flitFIFOs   []*hwsim.FIFO[Flit]
	resultFIFOs []*hwsim.FIFO[stream.Result]
	subWindow   int
}

// BuildUniFlow constructs the design. next generates the input flit stream
// (operator flits may appear mid-stream to reprogram the cores at runtime);
// keepResults selects whether the sink records results for verification.
//
// The join operator derived from cfg.Condition is programmed into all cores
// before any generated flit is delivered, so the caller's stream may consist
// purely of tuples.
func BuildUniFlow(cfg UniFlowConfig, keepResults bool, next func() (Flit, bool)) (*UniFlowDesign, error) {
	cfg.applyDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	subWindow := cfg.WindowSize / cfg.NumCores

	d := &UniFlowDesign{cfg: cfg, sim: &hwsim.Simulator{}, subWindow: subWindow}

	fetchers := make([]*hwsim.FIFO[Flit], cfg.NumCores)
	results := make([]*hwsim.FIFO[stream.Result], cfg.NumCores)
	for i := 0; i < cfg.NumCores; i++ {
		c := NewUniCoreWithAlgorithm(i, subWindow, cfg.FIFODepth, cfg.Algorithm)
		d.cores = append(d.cores, c)
		fetchers[i] = c.Fetcher()
		results[i] = c.Results()
	}

	dist, err := buildDistribution(cfg.Network, cfg.Fanout, fetchers, cfg.FIFODepth)
	if err != nil {
		return nil, err
	}
	gath, err := buildGathering(cfg.Network, results, cfg.FIFODepth)
	if err != nil {
		return nil, err
	}
	d.dist, d.gath = dist, gath

	// Prepend the join operator instruction to the caller's stream.
	op := stream.JoinOperator{NumCores: cfg.NumCores, Condition: cfg.Condition}
	programmed := false
	gen := func() (Flit, bool) {
		if !programmed {
			programmed = true
			return OperatorFlit(op), true
		}
		return next()
	}
	d.src = NewSource(dist.ingress, d.sim.Cycle, gen)
	d.sink = NewSink(gath.egress, d.sim.Cycle, keepResults)

	// Register everything with the simulator.
	d.sim.Add(d.src)
	d.sim.Add(dist.comps...)
	for _, c := range d.cores {
		d.sim.Add(c)
	}
	d.sim.Add(gath.comps...)
	d.sim.Add(d.sink)
	d.sim.AddState(dist.fifos...)
	d.sim.AddState(gath.fifos...)
	for _, c := range d.cores {
		d.sim.AddState(c.Fetcher(), c.Results())
		d.flitFIFOs = append(d.flitFIFOs, c.Fetcher())
		d.resultFIFOs = append(d.resultFIFOs, c.Results())
	}
	return d, nil
}

// Sim exposes the underlying simulator.
func (d *UniFlowDesign) Sim() *hwsim.Simulator { return d.sim }

// Source exposes the test-bench source.
func (d *UniFlowDesign) Source() *Source { return d.src }

// Sink exposes the test-bench sink.
func (d *UniFlowDesign) Sink() *Sink { return d.sink }

// Cores exposes the join cores (read-only use).
func (d *UniFlowDesign) Cores() []*UniCore { return d.cores }

// SubWindowSize returns the per-core, per-stream sub-window capacity.
func (d *UniFlowDesign) SubWindowSize() int { return d.subWindow }

// DistributionStages returns the pipeline depth of the distribution network.
func (d *UniFlowDesign) DistributionStages() int { return d.dist.stages }

// GatheringStages returns the pipeline depth of the gathering network.
func (d *UniFlowDesign) GatheringStages() int { return d.gath.stages }

// DNodes returns the number of DNodes (0 for the lightweight network).
func (d *UniFlowDesign) DNodes() int { return d.dist.nodes }

// GNodes returns the number of GNodes (0 for the lightweight network).
func (d *UniFlowDesign) GNodes() int { return d.gath.nodes }

// Preload fills the cores' sub-windows with the most recent WindowSize (or
// fewer) tuples of each stream, distributed round-robin exactly as the
// storage cores would have, without spending simulation cycles. The tuples
// must be in arrival order; element i of r/s is treated as the i-th arrival
// of that stream.
func (d *UniFlowDesign) Preload(r, s []stream.Tuple) error {
	n := d.cfg.NumCores
	perCoreR := make([][]stream.Tuple, n)
	perCoreS := make([][]stream.Tuple, n)
	for i, t := range r {
		perCoreR[i%n] = append(perCoreR[i%n], t)
	}
	for i, t := range s {
		perCoreS[i%n] = append(perCoreS[i%n], t)
	}
	for p, c := range d.cores {
		cr, cs := perCoreR[p], perCoreS[p]
		// Keep only the most recent subWindow tuples of this core's class.
		if len(cr) > d.subWindow {
			cr = cr[len(cr)-d.subWindow:]
		}
		if len(cs) > d.subWindow {
			cs = cs[len(cs)-d.subWindow:]
		}
		if err := c.Preload(cr, cs, uint64(len(r)), uint64(len(s))); err != nil {
			return fmt.Errorf("hwjoin: preload core %d: %w", p, err)
		}
	}
	return nil
}

// Quiescent reports whether no work is in flight anywhere: the source is
// exhausted, every FIFO is empty, and every core is idle.
func (d *UniFlowDesign) Quiescent() bool {
	if !d.src.Exhausted() {
		return false
	}
	if d.dist.ingress.Len() > 0 || d.gath.egress.Len() > 0 {
		return false
	}
	for _, f := range d.flitFIFOs {
		if f.Len() > 0 {
			return false
		}
	}
	for _, f := range d.resultFIFOs {
		if f.Len() > 0 {
			return false
		}
	}
	for _, c := range d.cores {
		if !c.Idle() {
			return false
		}
	}
	return d.distEmpty() && d.gathEmpty()
}

func (d *UniFlowDesign) distEmpty() bool {
	for _, f := range d.dist.fifos {
		if lf, ok := f.(*hwsim.FIFO[Flit]); ok && lf.Len() > 0 {
			return false
		}
	}
	return true
}

func (d *UniFlowDesign) gathEmpty() bool {
	for _, f := range d.gath.fifos {
		if rf, ok := f.(*hwsim.FIFO[stream.Result]); ok && rf.Len() > 0 {
			return false
		}
	}
	return true
}

// RunToQuiescence steps the simulation until Quiescent, with a cycle budget.
func (d *UniFlowDesign) RunToQuiescence(maxCycles uint64) (uint64, error) {
	return d.sim.RunUntil(maxCycles, d.Quiescent)
}

// AttachDefaultProbes registers the design's headline signals with a VCD
// tracer: cumulative tuples injected and results drained, the ingress FIFO
// occupancy, a busy bit per join core (up to 64), and core 0's window fill.
func (d *UniFlowDesign) AttachDefaultProbes(tr *hwsim.Tracer) error {
	if err := tr.Probe("injected", 32, func() uint64 { return d.src.Injected() }); err != nil {
		return err
	}
	if err := tr.Probe("drained", 32, func() uint64 { return d.sink.Drained() }); err != nil {
		return err
	}
	if err := tr.Probe("ingress_len", 8, func() uint64 { return uint64(d.dist.ingress.Len()) }); err != nil {
		return err
	}
	width := len(d.cores)
	if width > 64 {
		width = 64
	}
	if err := tr.Probe("cores_busy", width, func() uint64 {
		var bits uint64
		for i := 0; i < width; i++ {
			if !d.cores[i].Idle() {
				bits |= 1 << i
			}
		}
		return bits
	}); err != nil {
		return err
	}
	return tr.Probe("jc0_window_r", 24, func() uint64 { return uint64(d.cores[0].windowR.Len()) })
}

// ThroughputMeasurement is the outcome of a saturated input-throughput run.
type ThroughputMeasurement struct {
	WarmupCycles   uint64
	MeasureCycles  uint64
	TuplesInjected uint64 // during the measurement phase
	ResultsDrained uint64 // during the measurement phase
}

// TuplesPerCycle returns the measured input throughput in tuples per clock
// cycle; multiply by the clock frequency for absolute throughput.
func (m ThroughputMeasurement) TuplesPerCycle() float64 {
	if m.MeasureCycles == 0 {
		return 0
	}
	return float64(m.TuplesInjected) / float64(m.MeasureCycles)
}

// MeasureThroughput drives the design with its generator for warmup cycles,
// then measures injected input tuples over measure cycles.
func (d *UniFlowDesign) MeasureThroughput(warmup, measure uint64) ThroughputMeasurement {
	d.sim.Run(warmup)
	startIn := d.src.Injected()
	startOut := d.sink.Drained()
	d.sim.Run(measure)
	return ThroughputMeasurement{
		WarmupCycles:   warmup,
		MeasureCycles:  measure,
		TuplesInjected: d.src.Injected() - startIn,
		ResultsDrained: d.sink.Drained() - startOut,
	}
}
