package hwjoin

import (
	"fmt"

	"accelstream/internal/core"
	"accelstream/internal/hwsim"
	"accelstream/internal/stream"
)

// Processing Core controller states (Figure 13).
type procState uint8

const (
	procIdle procState = iota + 1 // unprogrammed, waiting for a join operator
	procOpRead1
	procOpRead2
	procScan // Join Processing: one window read per cycle
	procEmit // Emit Result: push one matched pair
	procWait // Join Wait: programmed, waiting for a tuple
)

// Storage Core controller states (Figure 12). The "R Store Done" / "S Store
// Done" states of the paper's diagram are zero-work exits and are folded
// into the return to idle; skipping a store (not this core's turn) costs no
// extra cycle.
type storState uint8

const (
	storIdle storState = iota + 1
	storOpStore1
	storOpStore2
	storStore // Store in Window R / Store in Window S (one BRAM write)
)

// JoinAlgorithm selects how the Processing Core evaluates the join. The
// paper's design "does not pose any limitation on the chosen join
// algorithm, e.g., nested-loop join or hash join" — both are provided.
type JoinAlgorithm uint8

// Join algorithms.
const (
	// NestedLoop scans the whole opposite sub-window, one BRAM read per
	// cycle — the configuration of the paper's measurements.
	NestedLoop JoinAlgorithm = iota + 1
	// HashJoin walks only the matching hash bucket, one entry per cycle.
	// Valid only for the equi-join on the key field; it makes the core
	// ingest-bound (≈1 tuple/cycle) instead of scan-bound.
	HashJoin
)

// String implements fmt.Stringer.
func (a JoinAlgorithm) String() string {
	switch a {
	case NestedLoop:
		return "nested-loop"
	case HashJoin:
		return "hash"
	default:
		return fmt.Sprintf("algorithm(%d)", uint8(a))
	}
}

// UniCore is one uni-flow join core (Figure 11): a Fetcher buffer that
// decouples the core from the distribution network, a Storage Core that
// stores every NumCores-th tuple of each stream into its sub-window, and a
// Processing Core that compares each incoming tuple against the resident
// sub-window of the opposite stream, one read per clock cycle.
//
// Both controller FSMs follow the paper's state diagrams; the core accepts
// a new flit only when the Processing Core is in Join Wait (or Idle) so a
// tuple's window probe always runs against exactly the window contents at
// its arrival, giving results identical to the sequential oracle.
type UniCore struct {
	position int
	algo     JoinAlgorithm

	fetcher *hwsim.FIFO[Flit]
	results *hwsim.FIFO[stream.Result]

	windowR *stream.SlidingWindow
	windowS *stream.SlidingWindow

	// Hash-join state: per-stream buckets keyed by the 32-bit key, each
	// bucket in arrival order (the BRAM chain of a hardware hash table).
	bucketsR map[uint32][]stream.Tuple
	bucketsS map[uint32][]stream.Tuple

	part       core.Partition
	cond       stream.JoinCondition
	programmed bool
	pendingOp  stream.JoinOperator

	// Arrival counters per stream (Storage Core round-robin turn state).
	countR, countS uint64
	// How many tuples this core actually stored, per stream (diagnostics).
	storedR, storedS uint64

	proc      procState
	stor      storState
	pending   *Flit
	probe     stream.Tuple
	probeSide stream.Side
	scanIdx   int
	scanLen   int
	scanWin   *stream.SlidingWindow
	scanList  []stream.Tuple // hash join: the probed bucket snapshot
	emitPend  stream.Result
	storeT    stream.Tuple
	storeSide stream.Side

	// Counters for measurement.
	processed uint64 // tuples fully scanned
	emitted   uint64
	reads     uint64 // window reads performed (BRAM activity)
}

// NewUniCore builds a join core at the given chain position with per-stream
// sub-windows of subWindow tuples and the given FIFO depths.
func NewUniCore(position, subWindow, fifoDepth int) *UniCore {
	return NewUniCoreWithAlgorithm(position, subWindow, fifoDepth, NestedLoop)
}

// NewUniCoreWithAlgorithm builds a join core using the given join
// algorithm.
func NewUniCoreWithAlgorithm(position, subWindow, fifoDepth int, algo JoinAlgorithm) *UniCore {
	c := &UniCore{
		position: position,
		algo:     algo,
		fetcher:  hwsim.NewFIFO[Flit](fmt.Sprintf("jc%d.fetcher", position), fifoDepth),
		results:  hwsim.NewFIFO[stream.Result](fmt.Sprintf("jc%d.results", position), fifoDepth),
		windowR:  stream.NewSlidingWindow(subWindow),
		windowS:  stream.NewSlidingWindow(subWindow),
		proc:     procIdle,
		stor:     storIdle,
	}
	if algo == HashJoin {
		c.bucketsR = make(map[uint32][]stream.Tuple)
		c.bucketsS = make(map[uint32][]stream.Tuple)
	}
	return c
}

// insertWindow stores a tuple into one stream's sub-window (ring plus hash
// buckets when hash join is selected), expiring the oldest as needed.
func (c *UniCore) insertWindow(side stream.Side, t stream.Tuple) {
	win := c.windowR
	buckets := c.bucketsR
	if side == stream.SideS {
		win = c.windowS
		buckets = c.bucketsS
	}
	expired, ok := win.Insert(t)
	if c.algo != HashJoin {
		return
	}
	if ok {
		// The expired tuple is the oldest of this stream at this core, so
		// it is the first entry of its bucket's chain.
		b := buckets[expired.Key]
		if len(b) > 0 {
			if len(b) == 1 {
				delete(buckets, expired.Key)
			} else {
				buckets[expired.Key] = b[1:]
			}
		}
	}
	buckets[t.Key] = append(buckets[t.Key], t)
}

// Fetcher returns the core's input FIFO (fed by the distribution network).
func (c *UniCore) Fetcher() *hwsim.FIFO[Flit] { return c.fetcher }

// Results returns the core's result FIFO (drained by the gathering network).
func (c *UniCore) Results() *hwsim.FIFO[stream.Result] { return c.results }

// Name implements hwsim.Component.
func (c *UniCore) Name() string { return fmt.Sprintf("jc%d", c.position) }

// Idle reports whether the core has no in-flight work (both FSMs parked and
// no fetched-but-undispatched flit).
func (c *UniCore) Idle() bool {
	return c.pending == nil &&
		(c.proc == procWait || c.proc == procIdle) &&
		c.stor == storIdle
}

// Programmed reports whether a join operator has been stored.
func (c *UniCore) Programmed() bool { return c.programmed }

// Stored returns how many tuples this core stored per stream.
func (c *UniCore) Stored() (r, s uint64) { return c.storedR, c.storedS }

// Processed returns how many tuples the processing core finished scanning.
func (c *UniCore) Processed() uint64 { return c.processed }

// Emitted returns how many results this core produced.
func (c *UniCore) Emitted() uint64 { return c.emitted }

// WindowReads returns the number of BRAM reads performed (power/activity
// accounting).
func (c *UniCore) WindowReads() uint64 { return c.reads }

// Preload fills the core's sub-windows directly (the simulation equivalent
// of a BRAM initialization file) and fixes the arrival counters so that
// round-robin turns continue correctly. r and s must not exceed the
// sub-window capacity. countR/countS are the global per-stream arrival
// counts represented by the preloaded state.
func (c *UniCore) Preload(r, s []stream.Tuple, countR, countS uint64) error {
	if len(r) > c.windowR.Cap() || len(s) > c.windowS.Cap() {
		return fmt.Errorf("hwjoin: preload of %d/%d tuples exceeds sub-window capacity %d", len(r), len(s), c.windowR.Cap())
	}
	for _, t := range r {
		c.insertWindow(stream.SideR, t)
	}
	for _, t := range s {
		c.insertWindow(stream.SideS, t)
	}
	c.storedR += uint64(len(r))
	c.storedS += uint64(len(s))
	c.countR = countR
	c.countS = countS
	return nil
}

// Eval implements hwsim.Component. Each call is one clock cycle of the two
// controllers plus the fetch/dispatch logic.
func (c *UniCore) Eval() {
	c.evalProcessing()
	c.evalStorage()
	c.fetchAndDispatch()
}

func (c *UniCore) evalProcessing() {
	switch c.proc {
	case procOpRead1:
		c.proc = procOpRead2
	case procOpRead2:
		c.cond = c.pendingOp.Condition
		c.programmed = true
		c.proc = procWait
	case procEmit:
		if c.results.CanPush() {
			c.results.Push(c.emitPend)
			c.emitted++
			c.proc = procScan
		}
	case procScan:
		if c.scanIdx < c.scanLen {
			var stored stream.Tuple
			if c.scanList != nil {
				stored = c.scanList[c.scanIdx]
			} else {
				stored = c.scanWin.At(c.scanIdx)
			}
			c.scanIdx++
			c.reads++
			if c.cond.Match(c.probe, stored) {
				if c.probeSide == stream.SideR {
					c.emitPend = stream.Result{R: c.probe, S: stored}
				} else {
					c.emitPend = stream.Result{R: stored, S: c.probe}
				}
				c.proc = procEmit
				return
			}
		}
		if c.scanIdx >= c.scanLen {
			c.processed++
			c.proc = procWait
		}
	}
}

func (c *UniCore) evalStorage() {
	switch c.stor {
	case storOpStore1:
		c.stor = storOpStore2
	case storOpStore2:
		c.part = core.Partition{NumCores: c.pendingOp.NumCores, Position: c.position}
		c.stor = storIdle
	case storStore:
		c.insertWindow(c.storeSide, c.storeT)
		if c.storeSide == stream.SideR {
			c.storedR++
		} else {
			c.storedS++
		}
		c.stor = storIdle
	}
}

func (c *UniCore) fetchAndDispatch() {
	if c.pending == nil && c.fetcher.CanPop() {
		f := c.fetcher.Pop()
		c.pending = &f
	}
	if c.pending == nil || c.stor != storIdle {
		return
	}
	if c.proc != procWait && c.proc != procIdle {
		return
	}
	f := *c.pending
	switch f.Header {
	case stream.HeaderOperator:
		c.pendingOp = f.Op
		c.proc = procOpRead1
		c.stor = storOpStore1
		c.pending = nil
	case stream.HeaderTupleR, stream.HeaderTupleS:
		if !c.programmed {
			panic(fmt.Sprintf("hwjoin: %s received a tuple before a join operator was programmed", c.Name()))
		}
		side := f.Header.Side()
		// Storage Core: count the arrival and store on this core's turn.
		var turn bool
		if side == stream.SideR {
			turn = c.part.StoreTurn(c.countR)
			c.countR++
		} else {
			turn = c.part.StoreTurn(c.countS)
			c.countS++
		}
		if turn {
			c.storeT = f.Tuple
			c.storeSide = side
			c.stor = storStore
		}
		// Processing Core: snapshot the opposite window (nested loop) or
		// the matching bucket (hash join) and start the scan.
		c.probe = f.Tuple
		c.probeSide = side
		c.scanList = nil
		if c.algo == HashJoin {
			if side == stream.SideR {
				c.scanList = c.bucketsS[f.Tuple.Key]
			} else {
				c.scanList = c.bucketsR[f.Tuple.Key]
			}
			c.scanLen = len(c.scanList)
		} else {
			if side == stream.SideR {
				c.scanWin = c.windowS
			} else {
				c.scanWin = c.windowR
			}
			c.scanLen = c.scanWin.Len()
		}
		c.scanIdx = 0
		if c.scanLen == 0 {
			// Processing Skip: nothing to compare against.
			c.processed++
			c.proc = procWait
		} else {
			c.proc = procScan
		}
		c.pending = nil
	}
}

// Commit implements hwsim.Component. All core state is private to the core,
// so in-place updates in Eval are already deterministic; nothing to latch.
func (c *UniCore) Commit() {}
