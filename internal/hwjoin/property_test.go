package hwjoin

import (
	"math/rand"
	"testing"
	"testing/quick"

	"accelstream/internal/core"
	"accelstream/internal/stream"
)

// TestUniFlowOracleEquivalenceProperty drives randomized configurations —
// core count, window size, network kind, fan-out, join algorithm, key
// skew — through the cycle simulator and demands exact oracle equivalence
// every time.
func TestUniFlowOracleEquivalenceProperty(t *testing.T) {
	prop := func(seed int64, coresSeed, windowSeed, netSeed, fanSeed, algoSeed, domainSeed uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		cores := 1 << (coresSeed % 5)               // 1..16
		window := cores * (1 << (windowSeed%4 + 1)) // sub-window 2..16
		network := Lightweight
		if netSeed%2 == 1 {
			network = Scalable
		}
		fanout := int(fanSeed%3)*2 + 2 // 2, 4, 6
		algo := NestedLoop
		if algoSeed%2 == 1 {
			algo = HashJoin
		}
		domain := int(domainSeed%20) + 2

		inputs := randomInputs(rng, 250, domain)
		d, err := BuildUniFlow(UniFlowConfig{
			NumCores:   cores,
			WindowSize: window,
			Network:    network,
			Fanout:     fanout,
			Algorithm:  algo,
		}, true, inputsGenerator(inputs))
		if err != nil {
			t.Logf("build failed for cores=%d window=%d: %v", cores, window, err)
			return false
		}
		if _, err := d.RunToQuiescence(20_000_000); err != nil {
			t.Logf("no quiescence for cores=%d window=%d: %v", cores, window, err)
			return false
		}
		if err := core.VerifyExactlyOnce(window, stream.EquiJoinOnKey(), inputs, d.Sink().Results()); err != nil {
			t.Logf("cores=%d window=%d net=%v fanout=%d algo=%v: %v", cores, window, network, fanout, algo, err)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if testing.Short() {
		cfg.MaxCount = 5
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestBiFlowNoDuplicateProperty: for random chains and workloads, the
// coordinated bi-flow chain never emits a pair twice and never emits a
// condition-violating pair.
func TestBiFlowNoDuplicateProperty(t *testing.T) {
	prop := func(seed int64, coresSeed, windowSeed, domainSeed uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		cores := 1 << (coresSeed % 3)               // 1..4
		window := cores * (1 << (windowSeed%3 + 2)) // sub-window 4..16
		domain := int(domainSeed%8) + 2

		inputs := withFlush(randomInputs(rng, 120, domain), 2*window+120)
		d, err := BuildBiFlow(BiFlowConfig{NumCores: cores, WindowSize: window}, true, inputsGenerator(inputs))
		if err != nil {
			return false
		}
		if _, err := d.RunToQuiescence(50_000_000); err != nil {
			t.Logf("no quiescence for cores=%d window=%d: %v", cores, window, err)
			return false
		}
		seen := map[uint64]bool{}
		for _, r := range d.Sink().Results() {
			if r.R.Key != r.S.Key {
				t.Logf("condition violation: %v", r)
				return false
			}
			if seen[r.PairID()] {
				t.Logf("duplicate pair: %v", r)
				return false
			}
			seen[r.PairID()] = true
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 15}
	if testing.Short() {
		cfg.MaxCount = 4
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
