package hwjoin

import (
	"accelstream/internal/hwsim"
	"accelstream/internal/stream"
)

// Source injects flits into the design's ingress FIFO, one per cycle when
// the ingress accepts. It pulls flits from a generator function so that
// unbounded saturation workloads do not need to be materialized. Source is
// a test-bench construct, not part of the synthesized design.
type Source struct {
	out  *hwsim.FIFO[Flit]
	next func() (Flit, bool)

	pending    *Flit
	exhausted  bool
	injected   uint64
	injectedAt map[uint64]uint64 // tuple Seq -> cycle injected (probe support)
	clock      func() uint64
	trackSeqs  bool
}

// NewSource builds a source feeding out from the generator. clock returns
// the current simulation cycle and is used to timestamp injections when
// tracking is enabled.
func NewSource(out *hwsim.FIFO[Flit], clock func() uint64, next func() (Flit, bool)) *Source {
	return &Source{out: out, next: next, clock: clock, injectedAt: make(map[uint64]uint64)}
}

// TrackInjections enables per-tuple injection timestamps (used by latency
// probes; disabled by default to keep throughput runs allocation-free).
func (s *Source) TrackInjections(on bool) { s.trackSeqs = on }

// Injected returns how many flits have been pushed into the ingress.
func (s *Source) Injected() uint64 { return s.injected }

// Exhausted reports whether the generator has run out and everything was
// injected.
func (s *Source) Exhausted() bool { return s.exhausted && s.pending == nil }

// Reopen clears the exhausted latch so the generator is polled again on the
// next cycle. Streaming adapters (internal/server) use it to run the design
// to quiescence between replenishments of an otherwise-empty generator.
func (s *Source) Reopen() { s.exhausted = false }

// InjectionCycle returns when the tuple with the given sequence number was
// injected. Valid only when tracking is enabled.
func (s *Source) InjectionCycle(seq uint64) (uint64, bool) {
	c, ok := s.injectedAt[seq]
	return c, ok
}

// Name implements hwsim.Component.
func (s *Source) Name() string { return "source" }

// Eval implements hwsim.Component.
func (s *Source) Eval() {
	if s.pending == nil && !s.exhausted {
		f, ok := s.next()
		if !ok {
			s.exhausted = true
		} else {
			s.pending = &f
		}
	}
	if s.pending == nil || !s.out.CanPush() {
		return
	}
	s.out.Push(*s.pending)
	if s.trackSeqs && s.pending.Header != stream.HeaderOperator {
		s.injectedAt[s.pending.Tuple.Seq] = s.clock()
	}
	s.pending = nil
	s.injected++
}

// Commit implements hwsim.Component.
func (s *Source) Commit() {}

// Sink drains the design's egress result FIFO and records what it saw.
// Like Source, it is a test-bench construct.
type Sink struct {
	in        *hwsim.FIFO[stream.Result]
	clock     func() uint64
	results   []stream.Result
	lastCycle uint64
	drained   uint64
	keep      bool
}

// NewSink builds a sink draining in. When keep is true the sink retains
// every result for correctness checking; throughput runs set keep=false and
// only count.
func NewSink(in *hwsim.FIFO[stream.Result], clock func() uint64, keep bool) *Sink {
	return &Sink{in: in, clock: clock, keep: keep}
}

// Name implements hwsim.Component.
func (k *Sink) Name() string { return "sink" }

// Eval implements hwsim.Component.
func (k *Sink) Eval() {
	if !k.in.CanPop() {
		return
	}
	r := k.in.Pop()
	k.drained++
	k.lastCycle = k.clock()
	if k.keep {
		k.results = append(k.results, r)
	}
}

// Commit implements hwsim.Component.
func (k *Sink) Commit() {}

// Drained returns how many results the sink consumed.
func (k *Sink) Drained() uint64 { return k.drained }

// LastResultCycle returns the cycle at which the most recent result arrived.
func (k *Sink) LastResultCycle() uint64 { return k.lastCycle }

// Results returns the recorded results (empty unless keep was set).
func (k *Sink) Results() []stream.Result { return k.results }
