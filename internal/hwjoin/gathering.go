package hwjoin

import (
	"fmt"

	"accelstream/internal/hwsim"
	"accelstream/internal/stream"
)

// Collector is the lightweight result gathering network: a single unit that
// polls the join cores' result FIFOs round-robin, collecting at most one
// result per clock cycle. Its collection latency grows linearly with the
// number of join cores, which the paper identifies as the dominant latency
// cost of the lightweight design at scale.
type Collector struct {
	ins  []*hwsim.FIFO[stream.Result]
	out  *hwsim.FIFO[stream.Result]
	next int
}

// NewCollector builds a round-robin collector from ins to out.
func NewCollector(ins []*hwsim.FIFO[stream.Result], out *hwsim.FIFO[stream.Result]) *Collector {
	return &Collector{ins: ins, out: out}
}

// Name implements hwsim.Component.
func (c *Collector) Name() string { return "collector" }

// Eval implements hwsim.Component. The poll pointer advances every cycle
// whether or not the visited core had a result, modelling the fixed
// round-robin scan of the shared collection bus.
func (c *Collector) Eval() {
	in := c.ins[c.next]
	c.next = (c.next + 1) % len(c.ins)
	if in.CanPop() && c.out.CanPush() {
		c.out.Push(in.Pop())
	}
}

// Commit implements hwsim.Component.
func (c *Collector) Commit() {}

// GNode is one node of the scalable result gathering network (Section IV):
// it collects result tuples from its two upper ports using the Toggle Grant
// mechanism — the collection permission toggles between the two sources
// every clock cycle, so each source pushes at most one result every two
// cycles, with no two-directional handshake needed.
type GNode struct {
	name  string
	inA   *hwsim.FIFO[stream.Result]
	inB   *hwsim.FIFO[stream.Result] // nil for a pass-through node
	out   *hwsim.FIFO[stream.Result]
	grant bool // false: inA has permission; true: inB
}

// NewGNode builds a gathering node merging inA and inB into out. inB may be
// nil when an odd source is passed through a level unpaired.
func NewGNode(name string, inA, inB *hwsim.FIFO[stream.Result], out *hwsim.FIFO[stream.Result]) *GNode {
	return &GNode{name: name, inA: inA, inB: inB, out: out}
}

// Name implements hwsim.Component.
func (g *GNode) Name() string { return g.name }

// Eval implements hwsim.Component. The grant toggles every cycle regardless
// of whether a transfer happened, exactly as described for the Toggle Grant
// mechanism ("the destination GNode simply toggles this permission each
// cycle without the need for any special control unit").
func (g *GNode) Eval() {
	granted := g.inA
	if g.grant && g.inB != nil {
		granted = g.inB
	}
	if g.inB != nil {
		g.grant = !g.grant
	}
	if granted.CanPop() && g.out.CanPush() {
		g.out.Push(granted.Pop())
	}
}

// Commit implements hwsim.Component.
func (g *GNode) Commit() {}

// gatheringNet is the built result-gathering side of a design.
type gatheringNet struct {
	egress *hwsim.FIFO[stream.Result]
	comps  []hwsim.Component
	fifos  []hwsim.Committer
	nodes  int // GNode count (0 for lightweight)
	stages int
}

// buildGathering wires the join cores' result FIFOs to a single egress FIFO.
func buildGathering(kind NetworkKind, results []*hwsim.FIFO[stream.Result], fifoDepth int) (*gatheringNet, error) {
	if len(results) == 0 {
		return nil, fmt.Errorf("hwjoin: gathering network needs at least one join core")
	}
	switch kind {
	case Lightweight:
		out := hwsim.NewFIFO[stream.Result]("gather.out", fifoDepth)
		c := NewCollector(results, out)
		return &gatheringNet{
			egress: out,
			comps:  []hwsim.Component{c},
			fifos:  []hwsim.Committer{out},
			stages: 1,
		}, nil
	case Scalable:
		net := &gatheringNet{}
		level := results
		for len(level) > 1 {
			var next []*hwsim.FIFO[stream.Result]
			for i := 0; i < len(level); i += 2 {
				out := hwsim.NewFIFO[stream.Result](fmt.Sprintf("gnode%d.out", net.nodes), fifoDepth)
				var inB *hwsim.FIFO[stream.Result]
				if i+1 < len(level) {
					inB = level[i+1]
				}
				node := NewGNode(fmt.Sprintf("gnode%d", net.nodes), level[i], inB, out)
				net.nodes++
				net.comps = append(net.comps, node)
				net.fifos = append(net.fifos, out)
				next = append(next, out)
			}
			level = next
			net.stages++
		}
		net.egress = level[0]
		if net.stages == 0 {
			out := hwsim.NewFIFO[stream.Result]("gnode0.out", fifoDepth)
			node := NewGNode("gnode0", results[0], nil, out)
			net.nodes = 1
			net.stages = 1
			net.comps = append(net.comps, node)
			net.fifos = append(net.fifos, out)
			net.egress = out
		}
		return net, nil
	default:
		return nil, fmt.Errorf("hwjoin: unknown network kind %d", kind)
	}
}
