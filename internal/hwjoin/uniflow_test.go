package hwjoin

import (
	"fmt"
	"math/rand"
	"testing"

	"accelstream/internal/core"
	"accelstream/internal/stream"
)

// inputsGenerator turns an arrival sequence into a flit generator, assigning
// per-stream sequence numbers exactly like the oracle does.
func inputsGenerator(inputs []core.Input) func() (Flit, bool) {
	i := 0
	var seqR, seqS uint64
	return func() (Flit, bool) {
		if i >= len(inputs) {
			return Flit{}, false
		}
		in := inputs[i]
		i++
		t := in.Tuple
		if in.Side == stream.SideR {
			t.Seq = seqR
			seqR++
		} else {
			t.Seq = seqS
			seqS++
		}
		return TupleFlit(in.Side, t), true
	}
}

// randomInputs builds a random interleaved workload with keys drawn from a
// small domain so matches actually occur.
func randomInputs(rng *rand.Rand, n, keyDomain int) []core.Input {
	inputs := make([]core.Input, n)
	for i := range inputs {
		side := stream.SideR
		if rng.Intn(2) == 1 {
			side = stream.SideS
		}
		inputs[i] = core.Input{Side: side, Tuple: stream.Tuple{Key: uint32(rng.Intn(keyDomain)), Val: uint32(i)}}
	}
	return inputs
}

func TestUniFlowConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		cfg     UniFlowConfig
		wantErr bool
	}{
		{"ok", UniFlowConfig{NumCores: 4, WindowSize: 64}, false},
		{"zero cores", UniFlowConfig{NumCores: 0, WindowSize: 64}, true},
		{"indivisible window", UniFlowConfig{NumCores: 3, WindowSize: 64}, true},
		{"zero window", UniFlowConfig{NumCores: 4, WindowSize: 0}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := BuildUniFlow(tt.cfg, false, func() (Flit, bool) { return Flit{}, false })
			if (err != nil) != tt.wantErr {
				t.Errorf("BuildUniFlow() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

// TestUniFlowMatchesOracle is the central correctness test: for a variety of
// core counts, window sizes, and network kinds, the hardware design must
// produce exactly the oracle's result multiset.
func TestUniFlowMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := []struct {
		cores, window int
		network       NetworkKind
		fanout        int
	}{
		{1, 16, Lightweight, 0},
		{2, 16, Lightweight, 0},
		{4, 64, Lightweight, 0},
		{4, 64, Scalable, 2},
		{8, 64, Scalable, 2},
		{8, 64, Scalable, 4},
		{16, 128, Scalable, 2},
		{16, 16, Lightweight, 0},
	}
	for _, tc := range cases {
		name := fmt.Sprintf("cores=%d_w=%d_%v_fan=%d", tc.cores, tc.window, tc.network, tc.fanout)
		t.Run(name, func(t *testing.T) {
			inputs := randomInputs(rng, 600, 24)
			d, err := BuildUniFlow(UniFlowConfig{
				NumCores:   tc.cores,
				WindowSize: tc.window,
				Network:    tc.network,
				Fanout:     tc.fanout,
			}, true, inputsGenerator(inputs))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := d.RunToQuiescence(5_000_000); err != nil {
				t.Fatal(err)
			}
			if err := core.VerifyExactlyOnce(tc.window, stream.EquiJoinOnKey(), inputs, d.Sink().Results()); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestUniFlowThetaJoinMatchesOracle exercises a non-equi condition.
func TestUniFlowThetaJoinMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cond := stream.JoinCondition{LHS: stream.FieldKey, RHS: stream.FieldKey, Cmp: stream.CmpLT}
	inputs := randomInputs(rng, 200, 16)
	d, err := BuildUniFlow(UniFlowConfig{
		NumCores:   4,
		WindowSize: 32,
		Condition:  cond,
	}, true, inputsGenerator(inputs))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.RunToQuiescence(5_000_000); err != nil {
		t.Fatal(err)
	}
	if err := core.VerifyExactlyOnce(32, cond, inputs, d.Sink().Results()); err != nil {
		t.Error(err)
	}
}

// TestUniFlowRoundRobinBalance checks the storage discipline across cores.
func TestUniFlowRoundRobinBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	inputs := randomInputs(rng, 500, 1000) // huge domain: essentially no matches
	d, err := BuildUniFlow(UniFlowConfig{NumCores: 8, WindowSize: 4096}, false, inputsGenerator(inputs))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.RunToQuiescence(1_000_000); err != nil {
		t.Fatal(err)
	}
	var nR, nS uint64
	for _, in := range inputs {
		if in.Side == stream.SideR {
			nR++
		} else {
			nS++
		}
	}
	storedR := make([]uint64, 0, 8)
	storedS := make([]uint64, 0, 8)
	for _, c := range d.Cores() {
		r, s := c.Stored()
		storedR = append(storedR, r)
		storedS = append(storedS, s)
	}
	if err := core.VerifyRoundRobinBalance(nR, storedR); err != nil {
		t.Error(err)
	}
	if err := core.VerifyRoundRobinBalance(nS, storedS); err != nil {
		t.Error(err)
	}
}

// saturatedGenerator produces an endless alternating R/S stream with keys
// that never match (distinct per stream), for pure throughput measurement.
func saturatedGenerator() func() (Flit, bool) {
	var n uint64
	return func() (Flit, bool) {
		n++
		if n%2 == 0 {
			return TupleFlit(stream.SideR, stream.Tuple{Key: uint32(n), Val: 1, Seq: n / 2}), true
		}
		return TupleFlit(stream.SideS, stream.Tuple{Key: uint32(n), Val: 2, Seq: n / 2}), true
	}
}

// TestUniFlowThroughputScalesWithSubWindow verifies the paper's performance
// model: steady-state input throughput is one tuple per sub-window-scan,
// i.e. NumCores/WindowSize tuples per cycle — linear speedup in cores
// (Figure 14a).
func TestUniFlowThroughputScalesWithSubWindow(t *testing.T) {
	window := 1024
	for _, cores := range []int{2, 4, 8, 16} {
		cores := cores
		t.Run(fmt.Sprintf("cores=%d", cores), func(t *testing.T) {
			d, err := BuildUniFlow(UniFlowConfig{
				NumCores:   cores,
				WindowSize: window,
				Network:    Scalable,
			}, false, saturatedGenerator())
			if err != nil {
				t.Fatal(err)
			}
			// Saturation needs full windows; preload them.
			r := make([]stream.Tuple, window)
			s := make([]stream.Tuple, window)
			for i := range r {
				r[i] = stream.Tuple{Key: 0xF0000000 + uint32(i), Seq: uint64(i)}
				s[i] = stream.Tuple{Key: 0xE0000000 + uint32(i), Seq: uint64(i)}
			}
			if err := d.Preload(r, s); err != nil {
				t.Fatal(err)
			}
			subWindow := window / cores
			m := d.MeasureThroughput(uint64(20*subWindow), uint64(100*subWindow))
			got := m.TuplesPerCycle()
			want := 1.0 / float64(subWindow)
			if got < want*0.9 || got > want*1.1 {
				t.Errorf("throughput = %.6f tuples/cycle, want %.6f ±10%% (sub-window %d)", got, want, subWindow)
			}
		})
	}
}

// TestUniFlowLatency verifies the latency model of Figure 15: the time to
// process one tuple is dominated by the sub-window scan plus the network
// depths.
func TestUniFlowLatency(t *testing.T) {
	const window = 256
	for _, tc := range []struct {
		cores   int
		network NetworkKind
	}{
		{4, Lightweight},
		{4, Scalable},
		{16, Scalable},
	} {
		tc := tc
		t.Run(fmt.Sprintf("cores=%d_%v", tc.cores, tc.network), func(t *testing.T) {
			probe := core.Input{Side: stream.SideR, Tuple: stream.Tuple{Key: 42, Seq: 0}}
			d, err := BuildUniFlow(UniFlowConfig{
				NumCores:   tc.cores,
				WindowSize: window,
				Network:    tc.network,
			}, true, inputsGenerator([]core.Input{probe}))
			if err != nil {
				t.Fatal(err)
			}
			s := make([]stream.Tuple, window)
			for i := range s {
				s[i] = stream.Tuple{Key: 0xE0000000 + uint32(i), Seq: uint64(i)}
			}
			s[window/2] = stream.Tuple{Key: 42, Seq: uint64(window / 2)} // one match
			if err := d.Preload(nil, s); err != nil {
				t.Fatal(err)
			}
			cycles, err := d.RunToQuiescence(100_000)
			if err != nil {
				t.Fatal(err)
			}
			sub := window / tc.cores
			// Lower bound: operator programming + the full sub-window scan.
			if cycles < uint64(sub) {
				t.Errorf("latency %d cycles below the sub-window scan %d", cycles, sub)
			}
			// Upper bound: scan + both network depths + small constants.
			slack := uint64(sub + 8*tc.cores + 64)
			if cycles > slack {
				t.Errorf("latency %d cycles exceeds expected bound %d", cycles, slack)
			}
			if d.Sink().Drained() != 1 {
				t.Errorf("drained %d results, want 1", d.Sink().Drained())
			}
		})
	}
}

// TestUniFlowLightweightCollectionDominatesAtScale reproduces the Figure 15
// observation: with many cores, the lightweight design's round-robin result
// collection costs more cycles than the scalable tree.
func TestUniFlowLightweightCollectionDominatesAtScale(t *testing.T) {
	const cores = 64
	const window = 256 // sub-window 4: scan is negligible
	latency := func(network NetworkKind) uint64 {
		probe := core.Input{Side: stream.SideR, Tuple: stream.Tuple{Key: 42, Seq: 0}}
		d, err := BuildUniFlow(UniFlowConfig{
			NumCores:   cores,
			WindowSize: window,
			Network:    network,
		}, true, inputsGenerator([]core.Input{probe}))
		if err != nil {
			t.Fatal(err)
		}
		s := make([]stream.Tuple, window)
		for i := range s {
			s[i] = stream.Tuple{Key: 0xE0000000 + uint32(i), Seq: uint64(i)}
		}
		s[1] = stream.Tuple{Key: 42, Seq: 1}
		if err := d.Preload(nil, s); err != nil {
			t.Fatal(err)
		}
		cycles, err := d.RunToQuiescence(100_000)
		if err != nil {
			t.Fatal(err)
		}
		return cycles
	}
	light := latency(Lightweight)
	scalable := latency(Scalable)
	if light <= scalable {
		t.Errorf("lightweight latency %d should exceed scalable latency %d at %d cores", light, scalable, cores)
	}
}

// TestUniFlowRuntimeReprogramming checks the FQP headline feature: a new
// join operator flit reprograms the running cores without any halt or
// re-synthesis, and subsequent tuples use the new condition.
func TestUniFlowRuntimeReprogramming(t *testing.T) {
	lt := stream.JoinCondition{LHS: stream.FieldKey, RHS: stream.FieldKey, Cmp: stream.CmpLT}
	flits := []Flit{
		TupleFlit(stream.SideS, stream.Tuple{Key: 5, Seq: 0}),
		TupleFlit(stream.SideR, stream.Tuple{Key: 5, Seq: 0}), // EQ: matches
		TupleFlit(stream.SideR, stream.Tuple{Key: 3, Seq: 1}), // EQ: no match
		OperatorFlit(stream.JoinOperator{NumCores: 2, Condition: lt}),
		TupleFlit(stream.SideR, stream.Tuple{Key: 3, Seq: 2}), // LT: 3 < 5 matches
		TupleFlit(stream.SideR, stream.Tuple{Key: 7, Seq: 3}), // LT: no match
	}
	i := 0
	gen := func() (Flit, bool) {
		if i >= len(flits) {
			return Flit{}, false
		}
		f := flits[i]
		i++
		return f, true
	}
	d, err := BuildUniFlow(UniFlowConfig{NumCores: 2, WindowSize: 8}, true, gen)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.RunToQuiescence(10_000); err != nil {
		t.Fatal(err)
	}
	results := d.Sink().Results()
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2: %v", len(results), results)
	}
	seen := map[uint64]bool{}
	for _, r := range results {
		seen[r.PairID()] = true
	}
	if !seen[(stream.Result{R: stream.Tuple{Seq: 0}, S: stream.Tuple{Seq: 0}}).PairID()] {
		t.Error("missing EQ-phase result (R seq 0, S seq 0)")
	}
	if !seen[(stream.Result{R: stream.Tuple{Seq: 2}, S: stream.Tuple{Seq: 0}}).PairID()] {
		t.Error("missing LT-phase result (R seq 2, S seq 0)")
	}
}

// TestUniFlowPreloadMatchesStreaming: preloading windows then probing gives
// the same results as streaming the same tuples in.
func TestUniFlowPreloadMatchesStreaming(t *testing.T) {
	const window = 64
	const cores = 4
	s := make([]stream.Tuple, window)
	for i := range s {
		s[i] = stream.Tuple{Key: uint32(i % 10), Val: uint32(i), Seq: uint64(i)}
	}
	probe := stream.Tuple{Key: 7, Seq: 0}

	// Variant A: preload.
	dA, err := BuildUniFlow(UniFlowConfig{NumCores: cores, WindowSize: window}, true,
		inputsGenerator([]core.Input{{Side: stream.SideR, Tuple: probe}}))
	if err != nil {
		t.Fatal(err)
	}
	if err := dA.Preload(nil, s); err != nil {
		t.Fatal(err)
	}
	if _, err := dA.RunToQuiescence(100_000); err != nil {
		t.Fatal(err)
	}

	// Variant B: stream everything.
	inputs := make([]core.Input, 0, window+1)
	for _, tu := range s {
		inputs = append(inputs, core.Input{Side: stream.SideS, Tuple: tu})
	}
	inputs = append(inputs, core.Input{Side: stream.SideR, Tuple: probe})
	dB, err := BuildUniFlow(UniFlowConfig{NumCores: cores, WindowSize: window}, true, inputsGenerator(inputs))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dB.RunToQuiescence(1_000_000); err != nil {
		t.Fatal(err)
	}

	gotA := core.NewResultSet(dA.Sink().Results())
	gotB := core.NewResultSet(dB.Sink().Results())
	if diffs := gotB.Diff(gotA); len(diffs) != 0 {
		t.Errorf("preload vs streaming mismatch: %v", diffs)
	}
	if len(gotA) == 0 {
		t.Error("probe produced no results; test is vacuous")
	}
}

// TestUniFlowNetworkTopology sanity-checks DNode/GNode counts and stages.
func TestUniFlowNetworkTopology(t *testing.T) {
	tests := []struct {
		cores, fanout         int
		wantDNodes, wantDepth int
	}{
		{8, 2, 7, 3},
		{16, 2, 15, 4},
		{16, 4, 5, 2},
		{2, 2, 1, 1},
	}
	for _, tt := range tests {
		d, err := BuildUniFlow(UniFlowConfig{
			NumCores:   tt.cores,
			WindowSize: tt.cores * 4,
			Network:    Scalable,
			Fanout:     tt.fanout,
		}, false, func() (Flit, bool) { return Flit{}, false })
		if err != nil {
			t.Fatal(err)
		}
		if d.DNodes() != tt.wantDNodes {
			t.Errorf("cores=%d fanout=%d: DNodes = %d, want %d", tt.cores, tt.fanout, d.DNodes(), tt.wantDNodes)
		}
		if d.DistributionStages() != tt.wantDepth {
			t.Errorf("cores=%d fanout=%d: stages = %d, want %d", tt.cores, tt.fanout, d.DistributionStages(), tt.wantDepth)
		}
		if tt.fanout == 2 && d.GNodes() != tt.cores-1 {
			t.Errorf("cores=%d: GNodes = %d, want %d", tt.cores, d.GNodes(), tt.cores-1)
		}
	}
}
