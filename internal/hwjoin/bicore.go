package hwjoin

import (
	"fmt"

	"accelstream/internal/hwsim"
	"accelstream/internal/stream"
)

// The bi-flow join core (Figure 10) processing states. One processing unit
// serves both streams; the Coordinator Unit grants exactly one action per
// cycle, so accepting a tuple, scanning, emitting, storing, and
// neighbour transfers all serialize through it.
type biState uint8

const (
	biIdle biState = iota + 1
	biDecode
	biScan
	biEmit
	biStore
	// Fast-forward (low-latency handshake join) states.
	biFFEntryStore // store an ingress tuple before replicating it
	biFFForward    // push the replica to the next core before scanning
	biFFShiftStore // store-only acceptance of a neighbour's shifted tuple
)

// biPort is one direction of a neighbour link: a source of tuples that the
// downstream core (or the expiry reaper) can take. Interior ports expose a
// core's over-full window segment; edge ports expose an ingress FIFO.
type biPort interface {
	// available reports whether a tuple is offered.
	available() bool
	// valid reports whether taking it now is safe (the owning core is not
	// mid-scan over the offered segment).
	valid() bool
	// take removes and returns the offered tuple.
	take() stream.Tuple
}

// segmentPort offers the oldest tuple of a core's window segment once the
// segment is over-full (holds more than the nominal sub-window).
type segmentPort struct {
	core *BiCore
	side stream.Side
}

func (p segmentPort) available() bool {
	return p.core.segment(p.side).Len() > p.core.subWindow
}

func (p segmentPort) valid() bool {
	return !p.core.scanningSegment(p.side)
}

func (p segmentPort) take() stream.Tuple {
	t, ok := p.core.segment(p.side).RemoveOldest()
	if !ok {
		panic(fmt.Sprintf("hwjoin: %s segment-%s take on empty segment", p.core.Name(), p.side))
	}
	return t
}

// ingressPort offers tuples from a stream's ingress FIFO at a chain end.
type ingressPort struct {
	fifo *hwsim.FIFO[Flit]
}

func (p ingressPort) available() bool { return p.fifo.CanPop() }
func (p ingressPort) valid() bool     { return true }
func (p ingressPort) take() stream.Tuple {
	return p.fifo.Pop().Tuple
}

// biLink is the coordinated connection between two neighbouring join cores
// (or between a chain end and the outside world). It carries S tuples
// rightward through inS and R tuples leftward through inR. The single lock
// serializes the two directions: while a tuple is in flight (taken but not
// yet stored by the receiver), no opposite transfer may cross the link.
// This is exactly the locking the paper describes: "it is impossible to
// achieve simultaneous transmission of both TR and TS between two
// neighboring join cores due to the locks needed to avoid race conditions."
//
// Link state is intentionally combinational (same-cycle visibility): it
// models the coordinator units' request/grant wires, which resolve within a
// clock cycle. Evaluation order is fixed by component registration, so the
// simulation stays deterministic.
type biLink struct {
	name string
	lock stream.Side // direction currently in flight; SideNone = free
	inR  biPort      // provides R tuples flowing right-to-left
	inS  biPort      // provides S tuples flowing left-to-right

	// Fast-forward replica channels (low-latency handshake join, [36] in
	// the paper): repR carries R replicas leftward, repS carries S replicas
	// rightward. Nil on classic chains and at the chain edges.
	repR *hwsim.FIFO[stream.Tuple]
	repS *hwsim.FIFO[stream.Tuple]
	// parked counts replica copies held back by a neighbouring core whose
	// forward stalled (the copy is logically on this link).
	parked int
}

// replicasIdle reports whether no replica is queued on (or parked for) the
// link. Shift transfers must not overtake an in-flight replica, or the
// replica's sweep frontier would miss the shifted tuple.
func (l *biLink) replicasIdle() bool {
	if l.parked > 0 {
		return false
	}
	return (l.repR == nil || l.repR.Len() == 0) && (l.repS == nil || l.repS.Len() == 0)
}

// entryTap names an ingress buffer whose waiting tuples count as part of
// this core's window for one stream.
type entryTap struct {
	fifo *hwsim.FIFO[Flit]
	side stream.Side
}

// BiCore is one bi-flow join core: window buffers for both streams, buffer
// managers realized as the segment ports, a coordinator that serializes all
// actions, and a single processing unit. Compared to the uni-flow core it
// has five I/O ports (S in/out, R in/out, results) instead of two, which
// the paper highlights as a major complexity and cost difference.
type BiCore struct {
	position  int
	subWindow int

	segR *stream.SlidingWindow // capacity subWindow+2 (transfer slack)
	segS *stream.SlidingWindow

	left  *biLink // link to position-1 (S arrives here, R leaves here)
	right *biLink // link to position+1 (R arrives here, S leaves here)

	results *hwsim.FIFO[stream.Result]
	cond    stream.JoinCondition

	decodeCycles int
	memStall     int
	fastForward  bool

	// Entry-core bookkeeping (fast-forward): replicas scanning the entry
	// side's segment here must also see tuples still waiting in the ingress
	// buffer, or a fast replica could sweep past a tuple that arrived
	// earlier but has not been stored yet. A single-core chain is the entry
	// for both streams.
	entryTaps []entryTap

	state     biState
	decodeCtr int
	stallCtr  int

	probe     stream.Tuple
	probeSide stream.Side
	scanWin   *stream.SlidingWindow
	scanSide  stream.Side // which of the core's own segments is being read
	scanIdx   int
	scanLen   int
	extraScan []stream.Tuple // ingress-buffer tap appended to entry-core scans
	emitPend  stream.Result
	heldLink  *biLink
	preferS   bool
	isReplica bool
	// Parked replica copies whose forward push stalled; retried every
	// cycle so a congested link never deadlocks two forwarding cores.
	parkR *stream.Tuple
	parkS *stream.Tuple

	processed uint64
	emitted   uint64
	reads     uint64
	storedR   uint64
	storedS   uint64
}

// NewBiCore builds a bi-flow join core. subWindow is the nominal per-stream
// segment size; two extra slots absorb in-flight transfer slack.
func NewBiCore(position, subWindow, fifoDepth, decodeCycles, memStall int, cond stream.JoinCondition) *BiCore {
	return &BiCore{
		position:     position,
		subWindow:    subWindow,
		segR:         stream.NewSlidingWindow(subWindow + 2),
		segS:         stream.NewSlidingWindow(subWindow + 2),
		results:      hwsim.NewFIFO[stream.Result](fmt.Sprintf("bjc%d.results", position), fifoDepth),
		cond:         cond,
		decodeCycles: decodeCycles,
		memStall:     memStall,
		state:        biIdle,
	}
}

// Results returns the core's result FIFO.
func (c *BiCore) Results() *hwsim.FIFO[stream.Result] { return c.results }

// Name implements hwsim.Component.
func (c *BiCore) Name() string { return fmt.Sprintf("bjc%d", c.position) }

// Idle reports whether the core has no tuple in flight.
func (c *BiCore) Idle() bool { return c.state == biIdle }

// Processed returns how many tuples the core fully processed (entered,
// scanned, and stored).
func (c *BiCore) Processed() uint64 { return c.processed }

// Emitted returns how many results the core produced.
func (c *BiCore) Emitted() uint64 { return c.emitted }

// WindowReads returns the number of window-buffer reads performed.
func (c *BiCore) WindowReads() uint64 { return c.reads }

// Stored returns how many tuples the core stored per stream.
func (c *BiCore) Stored() (r, s uint64) { return c.storedR, c.storedS }

func (c *BiCore) segment(side stream.Side) *stream.SlidingWindow {
	if side == stream.SideR {
		return c.segR
	}
	return c.segS
}

// scanningSegment reports whether the processing unit is mid-scan, paused
// in emit, or committed to scanning the given own segment (decode and
// forward stages precede the scan). Neighbour takes from that segment are
// deferred while it is — otherwise a tuple could slide out from under a
// probe that has accepted but not yet snapshotted its window.
func (c *BiCore) scanningSegment(side stream.Side) bool {
	switch c.state {
	case biScan, biEmit:
		return c.scanSide == side
	case biDecode, biFFForward, biFFEntryStore:
		return c.probeSide.Opposite() == side
	default:
		return false
	}
}

// Preload fills a segment directly (oldest first) without simulation
// cycles. The tuples must not exceed the nominal sub-window.
func (c *BiCore) Preload(side stream.Side, tuples []stream.Tuple) error {
	if len(tuples) > c.subWindow {
		return fmt.Errorf("hwjoin: %s preload of %d tuples exceeds sub-window %d", c.Name(), len(tuples), c.subWindow)
	}
	seg := c.segment(side)
	for _, t := range tuples {
		seg.Insert(t)
	}
	if side == stream.SideR {
		c.storedR += uint64(len(tuples))
	} else {
		c.storedS += uint64(len(tuples))
	}
	return nil
}

// Eval implements hwsim.Component: one cycle of the coordinator-granted
// action.
func (c *BiCore) Eval() {
	c.tryFlushParks()
	switch c.state {
	case biIdle:
		c.tryAccept()
	case biDecode:
		c.decodeCtr--
		if c.decodeCtr <= 0 {
			c.startScan()
		}
	case biScan:
		c.evalScan()
	case biEmit:
		if c.results.CanPush() {
			c.results.Push(c.emitPend)
			c.emitted++
			c.state = biScan
			c.stallCtr = c.memStall
		}
	case biStore:
		c.evalStore()
	case biFFEntryStore:
		c.evalFFEntryStore()
	case biFFForward:
		c.evalFFForward()
	case biFFShiftStore:
		c.evalFFShiftStore()
	}
}

// evalFFEntryStore stores a fresh ingress tuple into its segment, releases
// the ingress link, and moves on to replication.
func (c *BiCore) evalFFEntryStore() {
	seg := c.segment(c.probeSide)
	if seg.Len() >= seg.Cap() {
		return // wait for downstream drain (acceptance guard makes this rare)
	}
	seg.Insert(c.probe)
	if c.probeSide == stream.SideR {
		c.storedR++
	} else {
		c.storedS++
	}
	if c.heldLink != nil {
		c.heldLink.lock = stream.SideNone
		c.heldLink = nil
	}
	c.state = biFFForward
}

// evalFFForward pushes the replica onto the next core's replica channel —
// before the local scan, which is the whole point of the low-latency
// variant — then starts the local scan. A congested link parks the copy
// (still accounted to the link, so shifts cannot overtake it) rather than
// stalling the core: two cores blocked on each other's full replica
// channels would otherwise deadlock.
func (c *BiCore) evalFFForward() {
	var fifo *hwsim.FIFO[stream.Tuple]
	var link *biLink
	if c.probeSide == stream.SideR {
		link = c.left
		fifo = link.repR // R replicas travel leftward
	} else {
		link = c.right
		fifo = link.repS
	}
	if fifo != nil { // nil at the chain end: the replica's sweep is done
		switch {
		case link.lock == stream.SideNone && fifo.Free() > 0:
			fifo.Push(c.probe)
		case c.probeSide == stream.SideR && c.parkR == nil:
			t := c.probe
			c.parkR = &t
			link.parked++
		case c.probeSide == stream.SideS && c.parkS == nil:
			t := c.probe
			c.parkS = &t
			link.parked++
		default:
			return // park occupied and link congested: wait
		}
	}
	c.decodeCtr = c.decodeCycles
	c.state = biDecode
}

// tryFlushParks retries stalled replica forwards, one per direction per
// cycle.
func (c *BiCore) tryFlushParks() {
	if c.parkR != nil {
		link := c.left
		if link.repR != nil && link.lock == stream.SideNone && link.repR.Free() > 0 {
			link.repR.Push(*c.parkR)
			c.parkR = nil
			link.parked--
		}
	}
	if c.parkS != nil {
		link := c.right
		if link.repS != nil && link.lock == stream.SideNone && link.repS.Free() > 0 {
			link.repS.Push(*c.parkS)
			c.parkS = nil
			link.parked--
		}
	}
}

// evalFFShiftStore is the store-only acceptance of a shifted tuple: the
// window segments slide exactly as in the classic chain, but shifted tuples
// are not re-scanned — replicas already compared them everywhere.
func (c *BiCore) evalFFShiftStore() {
	seg := c.segment(c.probeSide)
	if seg.Len() >= seg.Cap() {
		return
	}
	seg.Insert(c.probe)
	if c.probeSide == stream.SideR {
		c.storedR++
	} else {
		c.storedS++
	}
	if c.heldLink != nil {
		c.heldLink.lock = stream.SideNone
		c.heldLink = nil
	}
	c.processed++
	c.state = biIdle
}

// tryAccept is the coordinator's accept action: take one tuple from a
// neighbour link (or ingress), claiming the link lock for the duration of
// the tuple's processing. Acceptance requires room in the target segment so
// the eventual store cannot block while holding the lock.
func (c *BiCore) tryAccept() {
	// Fast-forward mode: queued replicas have absolute priority — they keep
	// the sweep frontier moving and unblock shift transfers.
	if c.fastForward && c.tryAcceptReplica() {
		return
	}
	type choice struct {
		link *biLink
		port biPort
		side stream.Side
	}
	var order []choice
	sChoice := choice{c.left, c.left.inS, stream.SideS}
	rChoice := choice{c.right, c.right.inR, stream.SideR}
	if c.preferS {
		order = []choice{sChoice, rChoice}
	} else {
		order = []choice{rChoice, sChoice}
	}
	for _, ch := range order {
		if ch.link.lock != stream.SideNone {
			continue
		}
		if !ch.port.available() || !ch.port.valid() {
			continue
		}
		_, isShift := ch.port.(segmentPort)
		if c.fastForward && isShift && !ch.link.replicasIdle() {
			// A queued replica must sweep this neighbourhood before the
			// windows slide underneath it.
			continue
		}
		if c.segment(ch.side).Len() > c.subWindow+1 {
			// No guaranteed room for the eventual store; wait until the
			// downstream neighbour drains our own offer.
			continue
		}
		t := ch.port.take()
		ch.link.lock = ch.side
		c.heldLink = ch.link
		c.probe = t
		c.probeSide = ch.side
		c.preferS = ch.side != stream.SideS
		if !c.fastForward {
			c.decodeCtr = c.decodeCycles
			c.state = biDecode
			return
		}
		c.isReplica = false
		if isShift {
			c.state = biFFShiftStore
		} else {
			c.state = biFFEntryStore
		}
		return
	}
}

// tryAcceptReplica pops one queued replica (R replicas arrive on the right
// link, S replicas on the left) and begins forward-then-scan processing.
func (c *BiCore) tryAcceptReplica() bool {
	type rchoice struct {
		fifo *hwsim.FIFO[stream.Tuple]
		side stream.Side
	}
	var order []rchoice
	sChoice := rchoice{c.left.repS, stream.SideS}
	rChoice := rchoice{c.right.repR, stream.SideR}
	if c.preferS {
		order = []rchoice{sChoice, rChoice}
	} else {
		order = []rchoice{rChoice, sChoice}
	}
	for _, ch := range order {
		if ch.fifo == nil || !ch.fifo.CanPop() {
			continue
		}
		c.probe = ch.fifo.Pop()
		c.probeSide = ch.side
		c.isReplica = true
		c.heldLink = nil
		c.preferS = ch.side != stream.SideS
		c.state = biFFForward
		return true
	}
	return false
}

func (c *BiCore) startScan() {
	c.scanSide = c.probeSide.Opposite()
	c.scanWin = c.segment(c.scanSide)
	c.scanLen = c.scanWin.Len()
	c.scanIdx = 0
	c.extraScan = nil
	if c.fastForward {
		for _, tap := range c.entryTaps {
			if tap.side != c.scanSide {
				continue
			}
			// Tap the ingress buffer: arrived-but-unstored tuples of the
			// scanned stream are logically part of this core's window.
			for _, f := range tap.fifo.Snapshot() {
				if f.Header.Side() == tap.side {
					c.extraScan = append(c.extraScan, f.Tuple)
				}
			}
		}
		c.scanLen += len(c.extraScan)
	}
	if c.scanLen == 0 {
		c.finishScan()
		return
	}
	c.stallCtr = c.memStall
	c.state = biScan
}

// finishScan ends a probe's local scan: classic cores proceed to the store
// step; fast-forward cores are done (storage was handled at entry).
func (c *BiCore) finishScan() {
	if !c.fastForward {
		c.state = biStore
		return
	}
	c.processed++
	c.state = biIdle
}

func (c *BiCore) evalScan() {
	if c.scanIdx >= c.scanLen {
		c.finishScan()
		return
	}
	c.stallCtr--
	if c.stallCtr > 0 {
		return
	}
	var stored stream.Tuple
	if segLen := c.scanLen - len(c.extraScan); c.scanIdx >= segLen {
		stored = c.extraScan[c.scanIdx-segLen]
	} else {
		stored = c.scanWin.At(c.scanIdx)
	}
	c.scanIdx++
	c.reads++
	c.stallCtr = c.memStall
	if c.fastForward && stored.Tag >= c.probe.Tag {
		// The stored tuple arrived later; its own replica owns this pair.
		return
	}
	if c.cond.Match(c.probe, stored) {
		if c.probeSide == stream.SideR {
			c.emitPend = stream.Result{R: c.probe, S: stored}
		} else {
			c.emitPend = stream.Result{R: stored, S: c.probe}
		}
		c.state = biEmit
	}
}

func (c *BiCore) evalStore() {
	seg := c.segment(c.probeSide)
	if seg.Len() >= seg.Cap() {
		// Hard transfer slack exhausted; wait for the neighbour (or the
		// reaper) to take our offer. The link lock stays held, which is the
		// convoying behaviour that throttles bi-flow throughput.
		return
	}
	seg.Insert(c.probe)
	if c.probeSide == stream.SideR {
		c.storedR++
	} else {
		c.storedS++
	}
	if c.heldLink != nil {
		c.heldLink.lock = stream.SideNone
		c.heldLink = nil
	}
	c.processed++
	c.state = biIdle
}

// Commit implements hwsim.Component. Core state is updated in place; link
// arbitration is deliberately combinational (see biLink).
func (c *BiCore) Commit() {}

// splitter routes the single ingress flit stream to the two chain ends:
// S tuples to the left end, R tuples to the right end (Figure 8a). It also
// stamps every tuple with its global arrival number, the ordering token the
// fast-forward replicas use.
type splitter struct {
	in   *hwsim.FIFO[Flit]
	outR *hwsim.FIFO[Flit]
	outS *hwsim.FIFO[Flit]
	tag  uint64
}

// Name implements hwsim.Component.
func (sp *splitter) Name() string { return "splitter" }

// Eval implements hwsim.Component.
func (sp *splitter) Eval() {
	if !sp.in.CanPop() {
		return
	}
	var out *hwsim.FIFO[Flit]
	switch sp.in.Front().Header {
	case stream.HeaderTupleR:
		out = sp.outR
	case stream.HeaderTupleS:
		out = sp.outS
	default:
		sp.in.Pop() // bi-flow cores are programmed at synthesis; drop others
		return
	}
	if out.CanPush() {
		f := sp.in.Pop()
		sp.tag++
		f.Tuple.Tag = sp.tag
		out.Push(f)
	}
}

// Commit implements hwsim.Component.
func (sp *splitter) Commit() {}

// reaper consumes expired tuples at a chain end: the R expiry at the far
// left and the S expiry at the far right. It takes whenever the end link is
// unlocked and the end core's offer is safe to take.
type reaper struct {
	name string
	link *biLink
	side stream.Side
	done uint64
}

// Name implements hwsim.Component.
func (r *reaper) Name() string { return r.name }

// Eval implements hwsim.Component.
func (r *reaper) Eval() {
	var port biPort
	if r.side == stream.SideR {
		port = r.link.inR
	} else {
		port = r.link.inS
	}
	if r.link.lock != stream.SideNone || port == nil {
		return
	}
	if port.available() && port.valid() {
		port.take()
		r.done++
	}
}

// Commit implements hwsim.Component.
func (r *reaper) Commit() {}
