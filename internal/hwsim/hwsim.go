// Package hwsim is a small cycle-level digital-hardware simulation kernel.
//
// It models synchronous designs the way an RTL simulator does, but at the
// granularity this repository needs: components (clocked processes) evaluate
// combinationally against the *committed* state of the previous clock edge
// and stage their effects; a commit phase then applies all staged effects at
// once, which is the clock edge. Because every Eval observes only committed
// state, evaluation order between components cannot change behaviour — the
// simulation is deterministic by construction.
//
// Communication between components uses registered FIFOs with ready/valid
// semantics: a producer may push when the FIFO's committed occupancy is
// below capacity (the registered "full" flag of the previous cycle), a
// consumer may pop when committed occupancy is non-zero. A capacity-2 FIFO
// therefore behaves like the standard skid buffer and sustains one transfer
// per cycle; a capacity-1 FIFO alternates, exactly like single-register
// handshakes in hardware.
package hwsim

import (
	"errors"
	"fmt"
)

// Component is a clocked process. Eval runs in the combinational phase and
// may read committed FIFO/register state and stage pushes, pops, and its own
// next state. Commit latches staged state and runs at the clock edge.
type Component interface {
	// Name identifies the component in diagnostics.
	Name() string
	// Eval computes staged effects from committed state.
	Eval()
	// Commit applies staged effects; it must not read other components.
	Commit()
}

// Committer is anything with clock-edge state (FIFOs, registers) that is not
// itself a clocked process.
type Committer interface {
	Commit()
}

// ErrMaxCyclesExceeded is returned by RunUntil when the predicate did not
// become true within the cycle budget.
var ErrMaxCyclesExceeded = errors.New("hwsim: maximum cycle count exceeded")

// Simulator drives a set of components and state elements through clock
// cycles. The zero value is usable.
type Simulator struct {
	comps      []Component
	committers []Committer
	cycle      uint64
}

// Add registers clocked processes with the simulator.
func (s *Simulator) Add(comps ...Component) {
	s.comps = append(s.comps, comps...)
}

// AddState registers state elements (FIFOs, registers) with the simulator.
func (s *Simulator) AddState(cs ...Committer) {
	s.committers = append(s.committers, cs...)
}

// Cycle returns the number of completed clock cycles.
func (s *Simulator) Cycle() uint64 { return s.cycle }

// Step advances the design by one clock cycle: all components evaluate
// against committed state, then all state commits.
func (s *Simulator) Step() {
	for _, c := range s.comps {
		c.Eval()
	}
	for _, st := range s.committers {
		st.Commit()
	}
	for _, c := range s.comps {
		c.Commit()
	}
	s.cycle++
}

// Run advances the design by n clock cycles.
func (s *Simulator) Run(n uint64) {
	for i := uint64(0); i < n; i++ {
		s.Step()
	}
}

// RunUntil steps the design until done() reports true, checking after every
// cycle, and returns the number of cycles it took. It returns
// ErrMaxCyclesExceeded if the predicate is still false after maxCycles.
func (s *Simulator) RunUntil(maxCycles uint64, done func() bool) (uint64, error) {
	start := s.cycle
	for !done() {
		if s.cycle-start >= maxCycles {
			return s.cycle - start, fmt.Errorf("%w (budget %d)", ErrMaxCyclesExceeded, maxCycles)
		}
		s.Step()
	}
	return s.cycle - start, nil
}

// FIFO is a registered queue with single-producer/single-consumer discipline
// per cycle. Protocol violations (pushing past capacity, popping empty,
// double pop in one cycle) panic: they indicate a design bug in the circuit
// being simulated, the moral equivalent of a failed hardware assertion.
type FIFO[T any] struct {
	name     string
	capacity int

	q          []T
	stagedPush []T
	stagedPop  int
}

// NewFIFO returns an empty FIFO with the given capacity.
func NewFIFO[T any](name string, capacity int) *FIFO[T] {
	if capacity <= 0 {
		panic(fmt.Sprintf("hwsim: FIFO %q capacity must be positive, got %d", name, capacity))
	}
	return &FIFO[T]{name: name, capacity: capacity}
}

// Name returns the FIFO's diagnostic name.
func (f *FIFO[T]) Name() string { return f.name }

// Cap returns the FIFO capacity in entries.
func (f *FIFO[T]) Cap() int { return f.capacity }

// Len returns the committed occupancy (as of the last clock edge).
func (f *FIFO[T]) Len() int { return len(f.q) }

// CanPush reports whether the registered full flag allows a push this cycle.
func (f *FIFO[T]) CanPush() bool { return len(f.q) < f.capacity }

// Free returns how many entries can still be staged this cycle, accounting
// for pushes already staged by earlier evaluations in the same cycle. Use
// it when one component may push a FIFO twice per cycle through different
// paths.
func (f *FIFO[T]) Free() int { return f.capacity - len(f.q) - len(f.stagedPush) }

// Snapshot returns a copy of the committed entries, oldest first. It models
// read-only taps on the FIFO's storage (no pop side effects).
func (f *FIFO[T]) Snapshot() []T {
	out := make([]T, len(f.q))
	copy(out, f.q)
	return out
}

// CanPop reports whether the registered empty flag allows a pop this cycle.
func (f *FIFO[T]) CanPop() bool { return len(f.q) > f.stagedPop }

// Push stages an entry for the next clock edge.
func (f *FIFO[T]) Push(v T) {
	if len(f.q)+len(f.stagedPush) >= f.capacity {
		panic(fmt.Sprintf("hwsim: FIFO %q overflow: pushed while full", f.name))
	}
	f.stagedPush = append(f.stagedPush, v)
}

// Front returns the oldest committed entry without consuming it.
func (f *FIFO[T]) Front() T {
	if len(f.q) == 0 {
		panic(fmt.Sprintf("hwsim: FIFO %q Front on empty queue", f.name))
	}
	return f.q[0]
}

// Pop stages consumption of the oldest entry and returns it.
func (f *FIFO[T]) Pop() T {
	if f.stagedPop > 0 {
		panic(fmt.Sprintf("hwsim: FIFO %q double pop in one cycle", f.name))
	}
	if len(f.q) == 0 {
		panic(fmt.Sprintf("hwsim: FIFO %q underflow: popped while empty", f.name))
	}
	f.stagedPop = 1
	return f.q[0]
}

// Commit applies staged pops and pushes at the clock edge.
func (f *FIFO[T]) Commit() {
	if f.stagedPop > 0 {
		f.q = f.q[f.stagedPop:]
		f.stagedPop = 0
	}
	if len(f.stagedPush) > 0 {
		f.q = append(f.q, f.stagedPush...)
		f.stagedPush = f.stagedPush[:0]
	}
	if len(f.q) > f.capacity {
		panic(fmt.Sprintf("hwsim: FIFO %q exceeded capacity after commit: %d > %d", f.name, len(f.q), f.capacity))
	}
}

// Reg is a single clocked register holding a value of type T.
type Reg[T any] struct {
	cur, next T
	loaded    bool
}

// NewReg returns a register initialized to v.
func NewReg[T any](v T) *Reg[T] {
	return &Reg[T]{cur: v, next: v}
}

// Get returns the committed value.
func (r *Reg[T]) Get() T { return r.cur }

// Set stages a new value for the next clock edge.
func (r *Reg[T]) Set(v T) {
	r.next = v
	r.loaded = true
}

// Commit latches the staged value.
func (r *Reg[T]) Commit() {
	if r.loaded {
		r.cur = r.next
		r.loaded = false
	}
}
