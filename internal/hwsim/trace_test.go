package hwsim

import (
	"strings"
	"testing"
)

func TestTracerProbeValidation(t *testing.T) {
	tr := NewTracer(&strings.Builder{})
	if err := tr.Probe("", 1, func() uint64 { return 0 }); err == nil {
		t.Error("nameless probe accepted")
	}
	if err := tr.Probe("x", 0, func() uint64 { return 0 }); err == nil {
		t.Error("zero-width probe accepted")
	}
	if err := tr.Probe("x", 65, func() uint64 { return 0 }); err == nil {
		t.Error("over-wide probe accepted")
	}
	if err := tr.Probe("x", 1, nil); err == nil {
		t.Error("nil sampler accepted")
	}
	if err := tr.Probe("ok", 8, func() uint64 { return 0 }); err != nil {
		t.Errorf("valid probe rejected: %v", err)
	}
	tr.Sample(0)
	if err := tr.Probe("late", 1, func() uint64 { return 0 }); err == nil {
		t.Error("probe after tracing started accepted")
	}
}

func TestTracerVCDOutput(t *testing.T) {
	var out strings.Builder
	tr := NewTracer(&out)

	f := NewFIFO[int]("pipe", 2)
	p := &producer{out: f}
	c := &consumer{in: f}
	var sim Simulator
	sim.Add(p, c)
	sim.AddState(f)

	if err := tr.Probe("fifo_len", 8, func() uint64 { return uint64(f.Len()) }); err != nil {
		t.Fatal(err)
	}
	if err := tr.Probe("fifo_full", 1, func() uint64 {
		if f.CanPush() {
			return 0
		}
		return 1
	}); err != nil {
		t.Fatal(err)
	}
	if err := sim.RunTraced(10, tr); err != nil {
		t.Fatal(err)
	}
	vcd := out.String()
	for _, want := range []string{
		"$timescale 1ns $end",
		"$var wire 8", "fifo_len",
		"$var wire 1", "fifo_full",
		"$enddefinitions $end",
		"#1\n",
	} {
		if !strings.Contains(vcd, want) {
			t.Errorf("VCD missing %q:\n%s", want, vcd)
		}
	}
	// Steady state: len oscillates at most between values; at least the
	// initial change record must exist for both signals.
	if !strings.Contains(vcd, "b1 ") && !strings.Contains(vcd, "b10 ") {
		t.Errorf("no multi-bit change records in VCD:\n%s", vcd)
	}
}

// TestTracerOnlyDumpsChanges: a constant signal appears once.
func TestTracerOnlyDumpsChanges(t *testing.T) {
	var out strings.Builder
	tr := NewTracer(&out)
	if err := tr.Probe("const", 4, func() uint64 { return 5 }); err != nil {
		t.Fatal(err)
	}
	var sim Simulator
	if err := sim.RunTraced(20, tr); err != nil {
		t.Fatal(err)
	}
	vcd := out.String()
	if got := strings.Count(vcd, "b101 "); got != 1 {
		t.Errorf("constant signal dumped %d times, want 1:\n%s", got, vcd)
	}
}

func TestVCDIDUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		id := vcdID(i)
		if id == "" || seen[id] {
			t.Fatalf("vcdID(%d) = %q not unique/valid", i, id)
		}
		seen[id] = true
	}
}
