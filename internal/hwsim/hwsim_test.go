package hwsim

import (
	"errors"
	"testing"
	"testing/quick"
)

// producer pushes increasing integers whenever its output FIFO accepts.
type producer struct {
	out  *FIFO[int]
	next int
	sent int
}

func (p *producer) Name() string { return "producer" }
func (p *producer) Eval() {
	if p.out.CanPush() {
		p.out.Push(p.next)
		p.next++
		p.sent++
	}
}
func (p *producer) Commit() {}

// consumer pops whenever input is non-empty and records what it saw.
type consumer struct {
	in   *FIFO[int]
	got  []int
	stop bool
}

func (c *consumer) Name() string { return "consumer" }
func (c *consumer) Eval() {
	if c.stop || !c.in.CanPop() {
		return
	}
	c.got = append(c.got, c.in.Pop())
}
func (c *consumer) Commit() {}

func buildPipe(capacity int) (*Simulator, *producer, *consumer) {
	f := NewFIFO[int]("pipe", capacity)
	p := &producer{out: f}
	c := &consumer{in: f}
	var sim Simulator
	sim.Add(p, c)
	sim.AddState(f)
	return &sim, p, c
}

func TestFIFOCapacity2SustainsOneTransferPerCycle(t *testing.T) {
	sim, _, c := buildPipe(2)
	sim.Run(100)
	// Cycle 0 stages the first push; the consumer first sees data in cycle 1.
	// Steady state must be one pop per cycle: 99 values after 100 cycles.
	if len(c.got) != 99 {
		t.Fatalf("consumer received %d values in 100 cycles, want 99 (full throughput)", len(c.got))
	}
	for i, v := range c.got {
		if v != i {
			t.Fatalf("out-of-order delivery: got[%d] = %d", i, v)
		}
	}
}

func TestFIFOCapacity1AlternatesCycles(t *testing.T) {
	// A single-register handshake cannot sustain one transfer per cycle:
	// the producer sees the registered full flag one cycle late.
	sim, _, c := buildPipe(1)
	sim.Run(100)
	if len(c.got) <= 40 || len(c.got) >= 60 {
		t.Fatalf("capacity-1 FIFO delivered %d values in 100 cycles, want ≈50 (alternating)", len(c.got))
	}
}

func TestFIFOBackpressure(t *testing.T) {
	f := NewFIFO[int]("bp", 2)
	p := &producer{out: f}
	var sim Simulator
	sim.Add(p)
	sim.AddState(f)
	sim.Run(50)
	// With no consumer, only the FIFO capacity is ever sent.
	if p.sent != 2 {
		t.Fatalf("producer sent %d values into a capacity-2 FIFO with no consumer, want 2", p.sent)
	}
	if f.Len() != 2 {
		t.Fatalf("FIFO holds %d, want 2", f.Len())
	}
}

func TestFIFOPanicsOnMisuse(t *testing.T) {
	assertPanics := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	assertPanics("zero capacity", func() { NewFIFO[int]("x", 0) })
	assertPanics("pop empty", func() { NewFIFO[int]("x", 1).Pop() })
	assertPanics("front empty", func() { NewFIFO[int]("x", 1).Front() })
	assertPanics("overflow", func() {
		f := NewFIFO[int]("x", 1)
		f.Push(1)
		f.Push(2)
	})
	assertPanics("double pop", func() {
		f := NewFIFO[int]("x", 2)
		f.Push(1)
		f.Commit()
		f.Pop()
		f.Pop()
	})
}

func TestFIFOPushVisibleOnlyAfterCommit(t *testing.T) {
	f := NewFIFO[int]("reg", 2)
	f.Push(7)
	if f.Len() != 0 || f.CanPop() {
		t.Fatal("staged push visible before the clock edge")
	}
	f.Commit()
	if f.Len() != 1 || f.Front() != 7 {
		t.Fatal("committed push not visible after the clock edge")
	}
}

func TestFIFOSimultaneousPushPop(t *testing.T) {
	f := NewFIFO[int]("sp", 2)
	f.Push(1)
	f.Commit()
	// Same cycle: pop the 1, push a 2.
	got := f.Pop()
	f.Push(2)
	f.Commit()
	if got != 1 {
		t.Fatalf("Pop() = %d, want 1", got)
	}
	if f.Len() != 1 || f.Front() != 2 {
		t.Fatalf("after simultaneous push/pop: len=%d front=%v", f.Len(), f.q)
	}
}

func TestRegLatchesOnCommit(t *testing.T) {
	r := NewReg(10)
	r.Set(20)
	if r.Get() != 10 {
		t.Fatal("Set visible before commit")
	}
	r.Commit()
	if r.Get() != 20 {
		t.Fatal("Set not visible after commit")
	}
	// Commit without Set keeps the value.
	r.Commit()
	if r.Get() != 20 {
		t.Fatal("Commit without Set changed the value")
	}
}

func TestRunUntil(t *testing.T) {
	sim, _, c := buildPipe(2)
	cycles, err := sim.RunUntil(1000, func() bool { return len(c.got) >= 10 })
	if err != nil {
		t.Fatalf("RunUntil error = %v", err)
	}
	if cycles == 0 || cycles > 20 {
		t.Errorf("RunUntil took %d cycles for 10 transfers, want ≈11", cycles)
	}
}

func TestRunUntilBudgetExceeded(t *testing.T) {
	var sim Simulator
	_, err := sim.RunUntil(5, func() bool { return false })
	if !errors.Is(err, ErrMaxCyclesExceeded) {
		t.Fatalf("RunUntil error = %v, want ErrMaxCyclesExceeded", err)
	}
}

func TestCycleCounter(t *testing.T) {
	var sim Simulator
	sim.Run(17)
	if sim.Cycle() != 17 {
		t.Fatalf("Cycle() = %d, want 17", sim.Cycle())
	}
}

// TestFIFOPreservesOrderAndContent: whatever interleaving of available
// cycles, a FIFO delivers exactly the pushed sequence.
func TestFIFOPreservesOrderAndContent(t *testing.T) {
	prop := func(capSeed uint8, n uint8) bool {
		capacity := int(capSeed%7) + 1
		sim, p, c := buildPipe(capacity)
		target := int(n%200) + 1
		_, err := sim.RunUntil(10000, func() bool { return len(c.got) >= target })
		if err != nil {
			return false
		}
		for i, v := range c.got {
			if v != i {
				return false
			}
		}
		return p.sent >= target
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
