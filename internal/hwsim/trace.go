package hwsim

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// Tracer records selected design signals every clock cycle and writes them
// as a Value Change Dump (VCD), the standard waveform format hardware
// engineers inspect simulations with. Attach probes, then call
// Simulator.StepTraced (or wire the tracer into your own run loop) and
// finally Flush.
type Tracer struct {
	w       io.Writer
	signals []*traceSignal
	started bool
	err     error
}

type traceSignal struct {
	name   string
	width  int
	sample func() uint64
	id     string
	last   uint64
	fresh  bool
}

// NewTracer builds a tracer writing VCD to w.
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{w: w}
}

// Probe registers a named signal of the given bit width; sample is called
// once per cycle after the clock edge. Probes must be registered before the
// first traced cycle.
func (t *Tracer) Probe(name string, width int, sample func() uint64) error {
	if t.started {
		return fmt.Errorf("hwsim: probes must be registered before tracing starts")
	}
	if name == "" || width <= 0 || width > 64 || sample == nil {
		return fmt.Errorf("hwsim: invalid probe %q (width %d)", name, width)
	}
	t.signals = append(t.signals, &traceSignal{name: name, width: width, sample: sample})
	return nil
}

// vcdID produces the short identifier code VCD uses for each variable.
func vcdID(i int) string {
	const alphabet = "!\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ"
	if i < len(alphabet) {
		return string(alphabet[i])
	}
	return string(alphabet[i%len(alphabet)]) + vcdID(i/len(alphabet)-1)
}

func (t *Tracer) header() {
	fmt.Fprintf(t.w, "$date %s $end\n", time.Unix(0, 0).UTC().Format("2006-01-02"))
	fmt.Fprintf(t.w, "$version accelstream hwsim $end\n")
	fmt.Fprintf(t.w, "$timescale 1ns $end\n")
	fmt.Fprintf(t.w, "$scope module design $end\n")
	// Stable declaration order helps diffing dumps.
	ordered := append([]*traceSignal(nil), t.signals...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].name < ordered[j].name })
	for i, s := range ordered {
		s.id = vcdID(i)
		fmt.Fprintf(t.w, "$var wire %d %s %s $end\n", s.width, s.id, s.name)
	}
	fmt.Fprintf(t.w, "$upscope $end\n$enddefinitions $end\n")
}

// Sample records the current cycle's signal values, emitting VCD change
// records for every signal that moved.
func (t *Tracer) Sample(cycle uint64) {
	if t.err != nil {
		return
	}
	if !t.started {
		t.header()
		t.started = true
	}
	var dumped bool
	for _, s := range t.signals {
		v := s.sample()
		if s.fresh && v == s.last {
			continue
		}
		if !dumped {
			if _, err := fmt.Fprintf(t.w, "#%d\n", cycle); err != nil {
				t.err = err
				return
			}
			dumped = true
		}
		s.last = v
		s.fresh = true
		if s.width == 1 {
			fmt.Fprintf(t.w, "%d%s\n", v&1, s.id)
		} else {
			fmt.Fprintf(t.w, "b%b %s\n", v, s.id)
		}
	}
}

// Err reports any write error encountered while tracing.
func (t *Tracer) Err() error { return t.err }

// RunTraced steps the simulator n cycles, sampling the tracer after every
// clock edge.
func (s *Simulator) RunTraced(n uint64, tr *Tracer) error {
	for i := uint64(0); i < n; i++ {
		s.Step()
		tr.Sample(s.cycle)
		if err := tr.Err(); err != nil {
			return err
		}
	}
	return nil
}
