package accelstream

import (
	"fmt"
	"sort"
	"strings"

	"accelstream/internal/experiments"
)

// ExperimentOptions tunes the experiment runners.
type ExperimentOptions struct {
	// Quick shrinks sweeps and measurement intervals.
	Quick bool
	// Seed fixes the synthetic workloads (default 42).
	Seed int64
	// ProbeKernel restricts the software experiments to one probe kernel;
	// KernelAuto (the default) sweeps both where a figure compares them.
	ProbeKernel ProbeKernel
}

// ExperimentResult is one regenerated figure/table.
type ExperimentResult struct {
	ID string
	// Text is the aligned-table rendering.
	Text string
	// CSV is the machine-readable form ("" for prose-only artefacts).
	CSV string
}

// ExperimentIDs lists every regenerable artefact, in presentation order.
func ExperimentIDs() []string {
	ids := make([]string, 0, len(experimentRunners))
	for id := range experimentRunners {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

var experimentRunners = map[string]func(experiments.Options) ([]ExperimentResult, error){
	"fig14a": figureRunner(experiments.Fig14a),
	"fig14b": figureRunner(experiments.Fig14b),
	"fig14c": figureRunner(experiments.Fig14c),
	"fig14d": figureRunner(experiments.Fig14d),
	"fig15": func(opt experiments.Options) ([]ExperimentResult, error) {
		cycles, micros, err := experiments.Fig15(opt)
		if err != nil {
			return nil, err
		}
		return []ExperimentResult{
			{ID: cycles.ID, Text: cycles.Render(), CSV: cycles.CSV()},
			{ID: micros.ID, Text: micros.Render(), CSV: micros.CSV()},
		}, nil
	},
	"fig16": figureRunner(experiments.Fig16),
	"software": func(opt experiments.Options) ([]ExperimentResult, error) {
		sel, micro, err := experiments.SoftwareBaseline(opt)
		if err != nil {
			return nil, err
		}
		return []ExperimentResult{
			{ID: sel.ID, Text: sel.Render(), CSV: sel.CSV()},
			{ID: micro.ID, Text: micro.Render(), CSV: micro.CSV()},
		}, nil
	},
	"fig17":      figureRunner(experiments.Fig17),
	"power":      figureRunner(experiments.PowerTable),
	"fanout":     figureRunner(experiments.FanoutAblation),
	"loadlat":    figureRunner(experiments.LoadLatency),
	"llhs":       figureRunner(experiments.LatencyByArchitecture),
	"netlat":     figureRunner(experiments.NetLatency),
	"shardscale": figureRunner(experiments.ShardScale),
	"elastic":    figureRunner(experiments.Elastic),
	"autoscale":  figureRunner(experiments.Autoscale),
	"recovery":   figureRunner(experiments.Recovery),
	"fig6": func(experiments.Options) ([]ExperimentResult, error) {
		text, err := experiments.Fig6Table()
		if err != nil {
			return nil, err
		}
		return []ExperimentResult{{ID: "fig6", Text: text}}, nil
	},
	"hwsw": func(opt experiments.Options) ([]ExperimentResult, error) {
		text, err := experiments.HwVsSw(opt)
		if err != nil {
			return nil, err
		}
		return []ExperimentResult{{ID: "hwsw", Text: text}}, nil
	},
	"landscape": func(experiments.Options) ([]ExperimentResult, error) {
		text, err := experiments.LandscapeReport()
		if err != nil {
			return nil, err
		}
		return []ExperimentResult{{ID: "landscape", Text: text}}, nil
	},
}

func figureRunner(fn func(experiments.Options) (experiments.Figure, error)) func(experiments.Options) ([]ExperimentResult, error) {
	return func(opt experiments.Options) ([]ExperimentResult, error) {
		fig, err := fn(opt)
		if err != nil {
			return nil, err
		}
		return []ExperimentResult{{ID: fig.ID, Text: fig.Render(), CSV: fig.CSV()}}, nil
	}
}

// RunExperiment regenerates one of the paper's figures/tables by ID (see
// ExperimentIDs), or all of them for id "all".
func RunExperiment(id string, opt ExperimentOptions) ([]ExperimentResult, error) {
	eopt := experiments.Options{Quick: opt.Quick, Seed: opt.Seed, ProbeKernel: opt.ProbeKernel}
	if eopt.Seed == 0 {
		eopt.Seed = 42
	}
	if id == "all" {
		var all []ExperimentResult
		for _, eid := range ExperimentIDs() {
			res, err := experimentRunners[eid](eopt)
			if err != nil {
				return nil, fmt.Errorf("accelstream: experiment %s: %w", eid, err)
			}
			all = append(all, res...)
		}
		return all, nil
	}
	run, ok := experimentRunners[strings.ToLower(id)]
	if !ok {
		return nil, fmt.Errorf("accelstream: unknown experiment %q (known: %s, all)", id, strings.Join(ExperimentIDs(), ", "))
	}
	res, err := run(eopt)
	if err != nil {
		return nil, fmt.Errorf("accelstream: experiment %s: %w", id, err)
	}
	return res, nil
}
