package accelstream

import (
	"io"

	"accelstream/internal/hwjoin"
	"accelstream/internal/hwsim"
	"accelstream/internal/softjoin"
	"accelstream/internal/synth"
)

// Tracer records simulated-design signals as a VCD waveform.
type Tracer = hwsim.Tracer

// NewTracer builds a VCD tracer writing to w. Attach it with a design's
// AttachDefaultProbes (or your own Probe calls) and drive the simulation
// with Sim().RunTraced.
func NewTracer(w io.Writer) *Tracer { return hwsim.NewTracer(w) }

// SoftwareConfig parameterizes the multicore software engines.
type SoftwareConfig = softjoin.Config

// SoftwareUniFlow is the software SplitJoin engine (Figure 14d / 16 of the
// paper): a distributor goroutine, independent join-core goroutines with
// round-robin sub-window storage, and a result-gathering stage.
type SoftwareUniFlow = softjoin.UniFlow

// NewSoftwareUniFlow builds (but does not start) a software SplitJoin.
func NewSoftwareUniFlow(cfg SoftwareConfig) (*SoftwareUniFlow, error) {
	return softjoin.NewUniFlow(cfg)
}

// SoftwareBiFlow is the software handshake-join chain baseline.
type SoftwareBiFlow = softjoin.BiFlow

// NewSoftwareBiFlow builds (but does not start) a software handshake join.
func NewSoftwareBiFlow(cfg SoftwareConfig) (*SoftwareBiFlow, error) {
	return softjoin.NewBiFlow(cfg)
}

// NetworkKind selects the distribution / result-gathering networks of the
// simulated hardware designs.
type NetworkKind = hwjoin.NetworkKind

// The two network designs of Section IV.
const (
	// Lightweight broadcasts/collects directly; cheap but its clock
	// frequency degrades with core count.
	Lightweight = hwjoin.Lightweight
	// Scalable uses pipelined DNode/GNode trees; log-depth latency and a
	// flat clock frequency.
	Scalable = hwjoin.Scalable
)

// Flit is one word on the simulated hardware's input bus.
type Flit = hwjoin.Flit

// TupleFlit wraps a tuple for the simulated ingress bus.
func TupleFlit(side Side, t Tuple) Flit { return hwjoin.TupleFlit(side, t) }

// HardwareUniFlowConfig parameterizes a simulated uni-flow FPGA design.
type HardwareUniFlowConfig = hwjoin.UniFlowConfig

// HardwareUniFlow is the cycle-level simulated uni-flow design (Figure 9):
// distribution network → independent join cores → result gathering network.
type HardwareUniFlow = hwjoin.UniFlowDesign

// NewHardwareUniFlow builds the simulated design around a flit generator;
// keepResults retains results for verification (disable for throughput
// runs).
func NewHardwareUniFlow(cfg HardwareUniFlowConfig, keepResults bool, next func() (Flit, bool)) (*HardwareUniFlow, error) {
	return hwjoin.BuildUniFlow(cfg, keepResults, next)
}

// HardwareBiFlowConfig parameterizes a simulated bi-flow FPGA design.
type HardwareBiFlowConfig = hwjoin.BiFlowConfig

// HardwareBiFlow is the cycle-level simulated bi-flow chain (Figure 8a).
type HardwareBiFlow = hwjoin.BiFlowDesign

// NewHardwareBiFlow builds the simulated bi-flow chain.
func NewHardwareBiFlow(cfg HardwareBiFlowConfig, keepResults bool, next func() (Flit, bool)) (*HardwareBiFlow, error) {
	return hwjoin.BuildBiFlow(cfg, keepResults, next)
}

// Device is an FPGA capacity/speed model.
type Device = synth.Device

// The paper's two evaluation platforms.
var (
	// Virtex5LX50T models the ML505 board's XC5VLX50T.
	Virtex5LX50T = synth.Virtex5LX50T
	// Virtex7VX485T models the VC707 board's XC7VX485T.
	Virtex7VX485T = synth.Virtex7VX485T
)

// DesignSpec identifies a hardware configuration for the synthesis model.
type DesignSpec = synth.DesignSpec

// SynthReport is a synthesis-style report: resources, fit, Fmax, power.
type SynthReport = synth.Report

// Synthesize estimates resources, feasibility, achievable clock, and power
// for a design on a device — the model standing in for the Xilinx tool
// chain's reports (calibration documented in EXPERIMENTS.md).
func Synthesize(spec DesignSpec, dev Device) (SynthReport, error) {
	return synth.Synthesize(spec, dev)
}
