package accelstream

import (
	"accelstream/internal/landscape"
	"accelstream/internal/virtual"
)

// DeploymentModel is how an accelerator joins the distributed system
// (standalone, co-placement, co-processor — the system-model layer of the
// paper's design landscape).
type DeploymentModel = landscape.DeploymentModel

// The three deployment categories.
const (
	Standalone  = landscape.Standalone
	CoPlacement = landscape.CoPlacement
	CoProcessor = landscape.CoProcessor
)

// ClusterNode describes one compute node offered to a virtualized FQP
// cluster.
type ClusterNode = virtual.Node

// Node hardware classes.
const (
	NodeFPGA = virtual.KindFPGA
	NodeCPU  = virtual.KindCPU
)

// Cluster virtualizes the FQP abstraction over heterogeneous nodes
// (Section VI, Figure 18): queries deploy against the pool, the scheduler
// picks a node honoring capacity and latency QoS, and streams/results flow
// through one interface regardless of where each query runs.
type Cluster = virtual.Cluster

// ClusterQoS states a deployed query's requirements.
type ClusterQoS = virtual.QoS

// NewCluster builds a virtualized cluster over the given nodes.
func NewCluster(nodes ...ClusterNode) (*Cluster, error) {
	return virtual.NewCluster(nodes...)
}
