# Developer entry points. The repo is stdlib-only Go; everything below
# runs offline with just the Go toolchain.

GO ?= go

.PHONY: all build vet fmt-check test test-race fuzz-short check

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fails if any file needs gofmt; prints the offending paths.
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

# The race detector sweep focuses on the concurrent subsystems: the
# network service (sessions, credits, drain), the shard router, and the
# software engines.
test-race:
	$(GO) test -race ./internal/server/... ./internal/shard/... ./internal/wire/... ./internal/softjoin/...

# Short fuzzing pass over the wire-protocol decoders (10s per target),
# seeded from the corruption-test corpus. CI-sized; run `go test -fuzz`
# directly for longer campaigns.
fuzz-short:
	@for f in FuzzReadFrame FuzzDecodeBatch FuzzDecodeResults FuzzDecodeControl; do \
		echo "fuzzing $$f"; \
		$(GO) test -run "^$$f$$" -fuzz "^$$f$$" -fuzztime 10s ./internal/wire/ || exit 1; \
	done

check: build vet fmt-check test
