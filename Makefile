# Developer entry points. The repo is stdlib-only Go; everything below
# runs offline with just the Go toolchain.

GO ?= go

.PHONY: all build vet fmt-check test test-race test-tls test-elastic test-recovery test-quota test-autoscale fuzz-short bench bench-probe bench-smoke probe-smoke check

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fails if any file needs gofmt; prints the offending paths.
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

# The race detector sweep focuses on the concurrent subsystems: the
# network service (sessions, credits, drain), the shard router, and the
# software engines.
test-race:
	$(GO) test -race ./internal/server/... ./internal/shard/... ./internal/wire/... ./internal/softjoin/...

# The secured-wire suite: TLS round trips, auth-token rejection, TLS/
# plaintext mismatch handling, and the secured shard redial — across the
# server, the shard router, and the facade options API. In-test
# self-signed certificates; no fixtures or network beyond loopback.
test-tls:
	$(GO) test -run 'TLS|Auth|Secure' -v . ./internal/server/ ./internal/shard/

# The elasticity suite: live shard-set rebalancing (grow, shrink, chained
# resizes, abort/crash recovery), engine state export/import, the session
# pool, and the streamshard admin endpoint — then the rebalance and pool
# paths again under the race detector.
test-elastic:
	$(GO) test -run 'Rebalance|ImportExport|ExportState|Pool|Admin|Elastic' -v \
		./internal/shard/ ./internal/softjoin/ ./internal/server/ ./internal/rebalance/... \
		./cmd/streamshard/ ./internal/experiments/
	$(GO) test -race -run 'Rebalance|Pool' ./internal/shard/ ./internal/server/

# The durability suite: checkpoint encode/decode and store properties
# (corruption, truncation, crash-mid-snapshot fallback), engine quiesce
# and snapshot cuts, the server restore/resume path, the coordinated
# all-shard snapshot, the admin snapshot endpoint, and the recovery
# experiment shape — then the snapshot/restore paths again under the
# race detector.
test-recovery:
	$(GO) test -run 'Checkpoint|Snapshot|Restore|Recovery|Quiesce|Resume' -v \
		./internal/checkpoint/ ./internal/softjoin/ ./internal/server/ \
		./internal/shard/ ./cmd/streamshard/ ./internal/experiments/
	$(GO) test -race -run 'Checkpoint|Snapshot|Restore' \
		./internal/server/ ./internal/shard/ ./internal/softjoin/

# The multi-tenant admission suite: the controller's bookkeeping, the
# session-cap race, the window-memory budget, lossless rate shaping, the
# v1/v2 handshake interop, tenant passthrough on shard redial and
# rebalance, and the facade precedence/quota surface — then the
# controller and the server's admission path again under the race
# detector.
test-quota:
	$(GO) test -run 'Quota|Tenant|Admission|Admit|V1ClientInterop|DialOptionPrecedence|OpenV2|RejectCode' -v \
		./internal/admission/ ./internal/server/ ./internal/shard/ ./internal/wire/ .
	$(GO) test -race -run 'Quota|Tenant|Admit' ./internal/admission/ ./internal/server/ ./internal/shard/

# The autoscaling suite: the policy/controller unit tests (hysteresis,
# cooldown, square-wave flap resistance, clock regressions), the router
# and daemon closed loops (grow/shrink under live ingest, oracle-equal),
# the redial backoff hint fix, and the admission hardening regressions
# (tenant eviction, bucket clock, throttle teardown) — then the
# controller and the scale paths again under the race detector.
test-autoscale:
	$(GO) test -run 'Autoscale|Scale|Policy|Redial|Signals|Cooldown|SquareWave|Streak|Trigger|Evict|BucketClock|ThrottledSession|QuotaTenants' -v \
		./internal/autoscale/ ./internal/shard/ ./internal/admission/ \
		./internal/server/ ./cmd/streamshard/ ./internal/experiments/
	$(GO) test -race -run 'Autoscale|Tick|Scale|Evict' \
		./internal/autoscale/ ./internal/shard/ ./internal/admission/ ./cmd/streamshard/

# Short fuzzing pass over the wire-protocol decoders (10s per target),
# seeded from the corruption-test corpus. CI-sized; run `go test -fuzz`
# directly for longer campaigns.
fuzz-short:
	@for f in FuzzReadFrame FuzzDecodeBatch FuzzDecodeResults FuzzDecodeControl; do \
		echo "fuzzing $$f"; \
		$(GO) test -run "^$$f$$" -fuzz "^$$f$$" -fuzztime 10s ./internal/wire/ || exit 1; \
	done
	@for f in FuzzDecode FuzzDecodeManifest FuzzDecodeChunk; do \
		echo "fuzzing checkpoint $$f"; \
		$(GO) test -run "^$$f$$" -fuzz "^$$f$$" -fuzztime 10s ./internal/checkpoint/ || exit 1; \
	done
	@echo "fuzzing FuzzParsePolicy"; \
	$(GO) test -run '^FuzzParsePolicy$$' -fuzz '^FuzzParsePolicy$$' -fuzztime 10s ./internal/autoscale/

# Hot-path microbenchmarks (allocations reported), then the end-to-end
# software figure; the JSON rows land in BENCH_software.json alongside
# the frozen pre-optimization baseline rows already committed there.
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./internal/wire/ ./internal/softjoin/
	$(GO) run ./cmd/benchmark -fig software -json

# Probe-kernel sweep: hash index vs block scan across windows and
# selectivities (comparisons/op reported per point), then the perf
# assertion that the index actually pays off.
bench-probe:
	$(GO) test -run '^$$' -bench '^BenchmarkProbe$$' -benchmem ./internal/softjoin/
	$(GO) test -run '^TestHashKernelOutpacesScan$$' -count=1 -v ./internal/softjoin/

# One-iteration pass over every benchmark: catches bit-rot in bench code
# without paying measurement time. CI runs this.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime=1x ./internal/wire/ ./internal/softjoin/

# CI assertion: the hash kernel must answer the equi-join probe load in
# less wall time than the block scan at W=2^14 — the point of the index.
probe-smoke:
	$(GO) test -run '^TestHashKernelOutpacesScan$$' -count=1 -v ./internal/softjoin/

check: build vet fmt-check test
