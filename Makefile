# Developer entry points. The repo is stdlib-only Go; everything below
# runs offline with just the Go toolchain.

GO ?= go

.PHONY: all build vet fmt-check test test-race check

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fails if any file needs gofmt; prints the offending paths.
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

# The race detector sweep focuses on the concurrent subsystems: the
# network service (sessions, credits, drain) and the software engines.
test-race:
	$(GO) test -race ./internal/server/... ./internal/wire/... ./internal/softjoin/...

check: build vet fmt-check test
