package accelstream

import (
	"accelstream/internal/autoscale"
	"accelstream/internal/rebalance"
	"accelstream/internal/shard"
)

// This file is the public face of the sharded deployment (internal/shard
// and cmd/streamshard): one logical join session fanned out over N
// streamd processes, SplitJoin-style — every batch is broadcast for
// probing, each tuple is stored by exactly one shard's residue class, and
// the merged result stream equals the single-engine oracle with no
// deduplication. See README.md, "Running sharded".

// ShardConfig parameterizes a shard router session.
type ShardConfig = shard.Config

// ShardRedialPolicy bounds reconnection of a dropped shard session.
type ShardRedialPolicy = shard.RedialPolicy

// ShardRouter is one logical join session over N shard endpoints:
// SendBatch broadcasts batches, Results streams the merged output, and
// Close drains every shard.
type ShardRouter = shard.Router

// ShardState is a point-in-time snapshot of one shard connection.
type ShardState = shard.State

// ShardStats are the router's aggregate totals, returned by Close.
type ShardStats = shard.Stats

// ShardRebalanceReport summarizes one live resize of a router's shard
// set (ShardRouter.Rebalance): layout sizes, window tuples migrated,
// the punctuation counters the transfer snapshotted, and whether the
// run aborted back to the old layout.
type ShardRebalanceReport = rebalance.Report

// DialSharded connects to every configured streamd endpoint and returns
// the router fronting them as one logical join session. It takes the same
// DialOption set as Dial — TLS and auth apply to every shard session,
// redials included — plus WithRedialPolicy; option-less calls behave
// exactly as before.
func DialSharded(cfg ShardConfig, opts ...DialOption) (*ShardRouter, error) {
	o := dialOptions{}.apply(opts)
	if o.tls != nil {
		cfg.TLS = o.tls
	}
	if o.authToken != "" {
		cfg.AuthToken = o.authToken
	}
	if o.tenant != "" {
		cfg.Tenant = o.tenant
	}
	if o.probeKernel != KernelAuto {
		cfg.ProbeKernel = o.probeKernel
	}
	if o.timeout > 0 {
		cfg.DialTimeout = o.timeout
	}
	if o.redial != nil {
		cfg.Redial = *o.redial
	}
	if o.autoscale != nil {
		cfg.Autoscale = o.autoscale
		cfg.Standby = o.standby
	}
	return shard.Dial(cfg)
}

// AutoscalePolicy parameterizes the closed-loop shard autoscaler: signal
// thresholds (per-shard ingest rate, credit starvation, admission
// throttling, window occupancy), hysteresis streaks, shard-count bounds,
// and the post-action cooldown. The zero value of every field defaults
// sensibly, but at least one hot trigger threshold must be set. The
// struct round-trips as JSON (see LoadAutoscalePolicy).
type AutoscalePolicy = autoscale.Policy

// AutoscaleReport is a controller snapshot: current shard count, decision
// counters, live streaks, cooldown state, and the recent scale actions.
type AutoscaleReport = autoscale.Report

// AutoscaleDecision is one policy evaluation's outcome.
type AutoscaleDecision = autoscale.Decision

// LoadAutoscalePolicy reads an AutoscalePolicy from a JSON file, applies
// defaults, and validates it. Unknown fields are rejected, so a typoed
// threshold fails loudly instead of silently never firing.
func LoadAutoscalePolicy(path string) (AutoscalePolicy, error) {
	return autoscale.LoadPolicy(path)
}

// ParseAutoscalePolicy decodes, defaults, and validates a JSON policy.
func ParseAutoscalePolicy(data []byte) (AutoscalePolicy, error) {
	return autoscale.ParsePolicy(data)
}
