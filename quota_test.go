package accelstream

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// startQuotaServer serves on loopback with the given config/options and
// registers a cleanup shutdown.
func startQuotaServer(t *testing.T, cfg ServerConfig, opts ...ServeOption) (*Server, string) {
	t.Helper()
	srv, err := Serve("127.0.0.1:0", cfg, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv, srv.Addr().String()
}

// closeQuietly drains and closes a session opened only for its handshake
// side effects.
func closeQuietly(c *Client) {
	go func() {
		for range c.Results() {
		}
	}()
	c.Close()
}

// TestDialOptionPrecedence pins the documented resolution order for the
// per-session knobs that exist both as DialOptions and as SessionConfig
// fields: explicit option > SessionConfig field > server default.
func TestDialOptionPrecedence(t *testing.T) {
	srv, addr := startQuotaServer(t, ServerConfig{ProbeKernel: KernelScan})
	base := SessionConfig{Engine: EngineSoftwareUniFlow, Cores: 1, Window: 64}

	// sessionBy dials, reads the session's resolved tenant and kernel off
	// the server's metrics, and closes. A prior case's session may still be
	// winding down server-side, so it polls for exactly one open session.
	sessionBy := func(cfg SessionConfig, opts ...DialOption) (tenant, kernel string) {
		t.Helper()
		c, err := Dial(addr, cfg, opts...)
		if err != nil {
			t.Fatal(err)
		}
		defer closeQuietly(c)
		deadline := time.Now().Add(5 * time.Second)
		for {
			open := 0
			for _, m := range srv.Metrics() {
				if m.Open {
					open++
					tenant, kernel = m.Tenant, m.Kernel
				}
			}
			if open == 1 {
				return tenant, kernel
			}
			if time.Now().After(deadline) {
				t.Fatalf("server reports %d open sessions, want 1", open)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	cases := []struct {
		name           string
		cfg            SessionConfig
		opts           []DialOption
		tenant, kernel string
	}{
		{"server defaults", base, nil, "default", "scan"},
		{"config fields beat server default",
			func() SessionConfig { c := base; c.Tenant = "cfg-tenant"; c.ProbeKernel = KernelHash; return c }(),
			nil, "cfg-tenant", "hash"},
		{"options beat config fields",
			func() SessionConfig { c := base; c.Tenant = "cfg-tenant"; c.ProbeKernel = KernelHash; return c }(),
			[]DialOption{WithTenant("opt-tenant"), WithProbeKernel(KernelScan)},
			"opt-tenant", "scan"},
		{"options alone beat server default", base,
			[]DialOption{WithTenant("opt-tenant"), WithProbeKernel(KernelHash)},
			"opt-tenant", "hash"},
	}
	for _, tc := range cases {
		tenant, kernel := sessionBy(tc.cfg, tc.opts...)
		if tenant != tc.tenant || kernel != tc.kernel {
			t.Errorf("%s: resolved (tenant=%q, kernel=%q), want (%q, %q)",
				tc.name, tenant, kernel, tc.tenant, tc.kernel)
		}
	}
}

// TestServeQuotasFacade runs the two-tenant demo from the README through
// the public API: a JSON quota file (the -quota-config format) loaded via
// LoadQuotaConfig, WithServeQuotas on Serve, typed rejections on Dial,
// and per-tenant accounting on Server.TenantMetrics.
func TestServeQuotasFacade(t *testing.T) {
	path := filepath.Join(t.TempDir(), "quotas.json")
	if err := os.WriteFile(path, []byte(`{
		"default": {"max_sessions": 1},
		"tenants": {"gold": {"max_sessions": 2}}
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	quotas, err := LoadQuotaConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	srv, addr := startQuotaServer(t, ServerConfig{}, WithServeQuotas(quotas))

	base := SessionConfig{Engine: EngineSoftwareUniFlow, Cores: 1, Window: 64}
	gold1, err := Dial(addr, base, WithTenant("gold"))
	if err != nil {
		t.Fatal(err)
	}
	defer closeQuietly(gold1)
	gold2, err := Dial(addr, base, WithTenant("gold"))
	if err != nil {
		t.Fatalf("gold's second session within its override quota: %v", err)
	}
	defer closeQuietly(gold2)
	if _, err := Dial(addr, base, WithTenant("gold")); !errors.Is(err, ErrAdmissionDenied) {
		t.Fatalf("gold's third session: got %v, want ErrAdmissionDenied", err)
	}

	bronze, err := Dial(addr, base, WithTenant("bronze"))
	if err != nil {
		t.Fatalf("bronze's first session under the default quota: %v", err)
	}
	defer closeQuietly(bronze)
	_, err = Dial(addr, base, WithTenant("bronze"))
	var adm *AdmissionError
	if !errors.As(err, &adm) {
		t.Fatalf("bronze's second session: got %v, want *AdmissionError", err)
	}
	if adm.RetryAfter <= 0 {
		t.Errorf("typed rejection has no retry-after hint: %+v", adm)
	}

	tenants, _ := srv.TenantMetrics()
	got := map[string]int{}
	for _, tu := range tenants {
		got[tu.Tenant] = tu.Sessions
	}
	if got["gold"] != 2 || got["bronze"] != 1 {
		t.Errorf("tenant accounting %v, want gold=2 bronze=1", got)
	}
}
