package accelstream_test

import (
	"fmt"

	"accelstream"
)

// Example runs the software SplitJoin on two tiny streams and prints the
// single join result.
func Example() {
	engine, err := accelstream.NewSoftwareUniFlow(accelstream.SoftwareConfig{
		NumCores:   2,
		WindowSize: 8,
		BatchSize:  1,
	})
	if err != nil {
		panic(err)
	}
	if err := engine.Start(); err != nil {
		panic(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for r := range engine.Results() {
			fmt.Printf("matched key %d: R val %d with S val %d\n", r.R.Key, r.R.Val, r.S.Val)
		}
	}()
	engine.Push(accelstream.SideS, accelstream.Tuple{Key: 7, Val: 100})
	engine.Push(accelstream.SideR, accelstream.Tuple{Key: 7, Val: 200})
	if err := engine.Close(); err != nil {
		panic(err)
	}
	<-done
	// Output: matched key 7: R val 200 with S val 100
}

// ExampleSynthesize reproduces the paper's headline synthesis point: the
// 16-core uni-flow design with an 8K window on the Virtex-5.
func ExampleSynthesize() {
	rep, err := accelstream.Synthesize(accelstream.DesignSpec{
		Flow:       accelstream.UniFlow,
		NumCores:   16,
		WindowSize: 1 << 13,
	}, accelstream.Virtex5LX50T)
	if err != nil {
		panic(err)
	}
	fmt.Printf("fits=%v operating=%.0fMHz power=%.2fmW\n", rep.Fit.Feasible, rep.OperatingMHz, rep.PowerMW)
	// Output: fits=true operating=100MHz power=800.34mW
}

// ExampleParseQuery compiles the paper's Figure 7 query onto an FQP fabric.
func ExampleParseQuery() {
	customers, _ := accelstream.NewSchema("customer", "product_id", "age")
	products, _ := accelstream.NewSchema("product", "product_id", "price")
	cat := accelstream.Catalog{"customer": customers, "product": products}

	q, err := accelstream.ParseQuery(`
		SELECT c.age, p.price FROM customer ROWS 1536 AS c
		JOIN product ROWS 1536 AS p ON c.product_id = p.product_id
		WHERE c.age > 25`)
	if err != nil {
		panic(err)
	}
	plan, err := accelstream.CompileQuery(q, cat)
	if err != nil {
		panic(err)
	}
	fab, err := accelstream.NewFabric(4)
	if err != nil {
		panic(err)
	}
	asn, err := fab.AssignQuery("fig7", plan)
	if err != nil {
		panic(err)
	}
	fmt.Printf("mapped onto %d OP-Blocks, %d free\n", len(asn.Blocks), len(fab.FreeBlocks()))
	// Output: mapped onto 3 OP-Blocks, 1 free
}
