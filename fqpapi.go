package accelstream

import (
	"accelstream/internal/fqp"
	"accelstream/internal/query"
	"accelstream/internal/stream"
)

// Schema describes a multi-field event record for the FQP fabric.
type Schema = stream.Schema

// NewSchema builds a schema from ordered field names.
func NewSchema(name string, fields ...string) (*Schema, error) {
	return stream.NewSchema(name, fields...)
}

// Record is one event under a schema.
type Record = stream.Record

// NewRecord builds a record, validating arity.
func NewRecord(s *Schema, values ...uint32) (Record, error) {
	return stream.NewRecord(s, values...)
}

// Fabric is a synthesized-once Flexible Query Processor: a pool of
// online-programmable blocks whose operators and routing change at runtime,
// without halting (Figures 5–7).
type Fabric = fqp.Fabric

// NewFabric builds a fabric with the given number of OP-Blocks.
func NewFabric(numBlocks int) (*Fabric, error) { return fqp.NewFabric(numBlocks) }

// Assignment records how a query was mapped onto fabric blocks.
type Assignment = fqp.Assignment

// PlanNode is one operator of a continuous-query plan.
type PlanNode = fqp.PlanNode

// Catalog maps stream names to schemas for query compilation.
type Catalog = query.Catalog

// Query is a parsed continuous query.
type Query = query.Query

// ParseQuery parses the module's SQL dialect:
//
//	SELECT a.f, b.g FROM s1 ROWS 8192 AS a
//	JOIN s2 ROWS 8192 AS b ON a.k = b.k WHERE a.f > 25
func ParseQuery(input string) (*Query, error) { return query.Parse(input) }

// CompileQuery lowers a query to an FQP plan (the dynamic-compiler path):
// assign the result to a running Fabric with AssignQuery.
func CompileQuery(q *Query, cat Catalog) (*PlanNode, error) {
	return query.Compile(q, cat)
}

// StaticCircuit is the product of the static (Glacier-style) compiler: a
// sealed single-query engine whose change cost is a full re-synthesis.
type StaticCircuit = query.Circuit

// CompileStaticCircuit builds a sealed circuit for one query.
func CompileStaticCircuit(name string, q *Query, cat Catalog) (*StaticCircuit, error) {
	return query.CompileStatic(name, q, cat)
}

// ReconfigPipeline describes the stages and costs of bringing a query
// change online (Figure 6).
type ReconfigPipeline = fqp.ReconfigPipeline

// ConventionalReconfiguration is the common FPGA flow: re-synthesize, halt,
// reprogram, resume.
func ConventionalReconfiguration() ReconfigPipeline { return fqp.ConventionalFlow() }

// FQPReconfiguration is the FQP flow for a concrete assignment: deliver
// instructions and rewrite routes, at the given fabric clock, with no halt.
func FQPReconfiguration(asn Assignment, clockMHz float64) (ReconfigPipeline, error) {
	return fqp.FQPFlow(asn, clockMHz)
}
